"""Access-pattern generators.

Each generator is a :data:`repro.workloads.base.TraceFactory` producing an
infinite :class:`WarpOp` stream for one warp.  The patterns correspond to the
behaviours the paper's benchmark suite exercises:

* :func:`streaming` — grid-stride loops over large arrays (srad_v2,
  streamcluster, backprop ...): perfectly coalesced, little reuse, the
  access shape that stresses metadata caches.
* :func:`tiled` — small working sets revisited repeatedly (heartwall,
  lavaMD): high cache hit rates, compute bound.
* :func:`random_access` — irregular, data-dependent addresses (bfs, cfd,
  kmeans): poor spatial locality, partially coalesced.
* :func:`pointer_chase` — serialized dependent lookups (b+tree probes):
  scattered sectors, few sectors per access.
* :func:`stencil` — multi-array structured-grid sweeps (fdtd2d, lbm,
  2Dconvolution, dwt2d): several read streams plus a write stream.
* :func:`compute_only` — compute phases with rare tiled accesses
  (heartwall, lavaMD).

``spec.sectors_per_access`` sectors are touched per memory instruction; a
value above 4 spans consecutive 128 B lines (back-to-back coalesced loads).
All addresses are sector-aligned and wrap inside ``spec.working_set``.

Epoch-batched generation
------------------------

With :data:`repro.sim.fastpath.BATCHING` on (and numpy present where it
helps), the regular patterns — streaming, tiled, stencil — pregenerate
their line indices an *epoch* at a time with numpy array arithmetic and
memoize the resulting (frozen, immutable) :class:`WarpOp` objects by
``(base address, is_write)``.  The op *sequence* is unchanged: the index
recurrences are evaluated with the same integer math, and the per-step
``rng.random()`` write-ratio draws are issued in the same order (or
skipped entirely when ``write_ratio == 0``, in which case no draw is ever
observable).  Irregular patterns (random, pointer_chase, mixed) stay on
the scalar path for their address draws — the Mersenne Twister sequence
cannot be vectorized without changing it — and only reuse memoized ops /
validation-free construction, which is output-invisible.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.common import params
from repro.sim import fastpath
from repro.workloads.base import WarpOp, WorkloadSpec, make_op_unchecked

_LINE = params.CACHE_LINE_BYTES
_SECTOR = params.SECTOR_BYTES

#: steps of line indices pregenerated per numpy batch.
EPOCH_STEPS = 512


def _span(base: int, count: int, region_base: int, region_bytes: int) -> Tuple[int, ...]:
    """*count* consecutive sectors from *base*, wrapped inside the region."""
    offset = base - region_base
    return tuple(
        region_base + (offset + i * _SECTOR) % region_bytes for i in range(count)
    )


def _stream_index(spec: WorkloadSpec, warp: int, total_warps: int, i: int, lines: int, span: int) -> int:
    """Line index of step *i* for one warp.

    ``blocked`` (default): each warp streams through its own contiguous
    slice of the iteration space — how row/tile-parallel kernels behave.
    ``strided``: classic grid-stride interleaving, where all warps sweep the
    same region in lockstep (the most metadata-hostile shape).
    """
    if spec.extra.get("layout", "blocked") == "strided":
        return ((i * total_warps + warp) * span) % lines
    slice_lines = max(span, lines // max(1, total_warps))
    base = (warp * slice_lines) % lines
    return (base + (i * span) % slice_lines) % lines


def _stream_index_epoch(
    spec: WorkloadSpec, warp: int, total_warps: int, start: int, lines: int, span: int
) -> list:
    """``_stream_index`` for steps ``[start, start + EPOCH_STEPS)`` at once.

    Same integer recurrence as the scalar form, evaluated in int64 array
    arithmetic (all operands fit comfortably: line counts are < 2**40).
    """
    np = fastpath.numpy
    i = np.arange(start, start + EPOCH_STEPS, dtype=np.int64)
    if spec.extra.get("layout", "blocked") == "strided":
        return (((i * total_warps + warp) * span) % lines).tolist()
    slice_lines = max(span, lines // max(1, total_warps))
    base = (warp * slice_lines) % lines
    return ((base + (i * span) % slice_lines) % lines).tolist()


def streaming(spec: WorkloadSpec, warp: int, total_warps: int) -> Iterator[WarpOp]:
    """Streaming over the working set (blocked or grid-stride)."""
    rng = spec.rng_for(warp)
    lines = spec.working_set // _LINE
    span = max(1, -(-spec.sectors_per_access * _SECTOR // _LINE))  # lines per step
    if fastpath.BATCHING and fastpath.HAVE_NUMPY:
        return _streaming_epoch(spec, warp, total_warps, rng, lines, span)
    return _streaming_scalar(spec, warp, total_warps, rng, lines, span)


def _streaming_scalar(spec, warp, total_warps, rng, lines, span) -> Iterator[WarpOp]:
    i = 0
    while True:
        line = _stream_index(spec, warp, total_warps, i, lines, span) * _LINE
        is_write = rng.random() < spec.write_ratio
        yield WarpOp(
            n_insts=spec.insts_per_step,
            compute_cycles=spec.compute_cycles,
            mem_addrs=_span(line, spec.sectors_per_access, 0, spec.working_set),
            is_write=is_write,
        )
        i += 1


def _streaming_epoch(spec, warp, total_warps, rng, lines, span) -> Iterator[WarpOp]:
    n_insts = spec.insts_per_step
    compute = spec.compute_cycles
    count = spec.sectors_per_access
    region = spec.working_set
    write_ratio = spec.write_ratio
    draw = rng.random if write_ratio > 0.0 else None
    memo: dict = {}
    start = 0
    while True:
        for index in _stream_index_epoch(spec, warp, total_warps, start, lines, span):
            base = index * _LINE
            is_write = draw() < write_ratio if draw is not None else False
            key = (base, is_write)
            op = memo.get(key)
            if op is None:
                op = make_op_unchecked(
                    n_insts, compute, _span(base, count, 0, region), is_write
                )
                memo[key] = op
            yield op
        start += EPOCH_STEPS


def tiled(spec: WorkloadSpec, warp: int, total_warps: int) -> Iterator[WarpOp]:
    """Repeated sweeps over a small shared tile (high reuse).

    ``spec.extra['tile_share']`` consecutive warps (default: one SM's worth)
    share a tile of ``tile_lines`` lines, so tiles stay L1/L2 resident.
    """
    rng = spec.rng_for(warp)
    tile_lines = max(1, spec.extra.get("tile_lines", 32))
    share = max(1, spec.extra.get("tile_share", 16))
    lines = spec.working_set // _LINE
    base_line = ((warp // share) * tile_lines) % max(1, lines - tile_lines)
    if fastpath.BATCHING:
        # the tile cycles with period tile_lines: after one sweep every op
        # object is served from the memo, allocation-free.
        n_insts = spec.insts_per_step
        compute = spec.compute_cycles
        count = spec.sectors_per_access
        region = spec.working_set
        write_ratio = spec.write_ratio
        draw = rng.random if write_ratio > 0.0 else None
        memo: dict = {}
        i = 0
        while True:
            base = (base_line + i % tile_lines) * _LINE
            is_write = draw() < write_ratio if draw is not None else False
            key = (base, is_write)
            op = memo.get(key)
            if op is None:
                op = make_op_unchecked(
                    n_insts, compute, _span(base, count, 0, region), is_write
                )
                memo[key] = op
            yield op
            i += 1
    i = 0
    while True:
        line = (base_line + i % tile_lines) * _LINE
        is_write = rng.random() < spec.write_ratio
        yield WarpOp(
            n_insts=spec.insts_per_step,
            compute_cycles=spec.compute_cycles,
            mem_addrs=_span(line, spec.sectors_per_access, 0, spec.working_set),
            is_write=is_write,
        )
        i += 1


def mixed(spec: WorkloadSpec, warp: int, total_warps: int) -> Iterator[WarpOp]:
    """Hot-set reuse plus a cold stream.

    With probability ``extra['hot_fraction']`` an access goes to a small hot
    region (``extra['hot_bytes']``, e.g. network weights, stencil rows) that
    stays cache resident; otherwise the warp advances its cold blocked
    stream.  This is how medium-bandwidth kernels behave: most accesses hit
    on chip, a steady minority goes to DRAM.

    The address draws are inherently scalar (per-step Mersenne draws), so
    this pattern keeps the per-step loop under batching and only memoizes
    the finished ops.
    """
    rng = spec.rng_for(warp)
    hot_fraction = spec.extra.get("hot_fraction", 0.8)
    hot_bytes = spec.extra.get("hot_bytes", 512 * 1024)
    hot_lines = max(1, hot_bytes // _LINE)
    lines = spec.working_set // _LINE
    span = max(1, -(-spec.sectors_per_access * _SECTOR // _LINE))
    memo: dict = {} if fastpath.BATCHING else None
    i = 0
    while True:
        is_write = rng.random() < spec.write_ratio
        if rng.random() < hot_fraction:
            line = rng.randrange(hot_lines) * _LINE
            region, base = hot_bytes, 0
            is_write = False  # hot sets are read-shared (weights, stencils)
        else:
            line = _stream_index(spec, warp, total_warps, i, lines, span) * _LINE
            region, base = spec.working_set, 0
            i += 1
        if memo is not None:
            key = (line, base, is_write)
            op = memo.get(key)
            if op is None:
                op = make_op_unchecked(
                    spec.insts_per_step,
                    spec.compute_cycles,
                    _span(line, spec.sectors_per_access, base, region),
                    is_write,
                )
                memo[key] = op
            yield op
            continue
        yield WarpOp(
            n_insts=spec.insts_per_step,
            compute_cycles=spec.compute_cycles,
            mem_addrs=_span(line, spec.sectors_per_access, base, region),
            is_write=is_write,
        )


def random_access(spec: WorkloadSpec, warp: int, total_warps: int) -> Iterator[WarpOp]:
    """Uniformly random lines; partially coalesced accesses.

    Address draws stay scalar (the rng sequence is the spec); under
    batching the finished ops are memoized by (line, is_write) so revisited
    lines cost two dict probes instead of a construction + validation.
    """
    rng = spec.rng_for(warp)
    lines = spec.working_set // _LINE
    if fastpath.BATCHING:
        n_insts = spec.insts_per_step
        compute = spec.compute_cycles
        count = spec.sectors_per_access
        region = spec.working_set
        write_ratio = spec.write_ratio
        randrange = rng.randrange
        draw = rng.random
        memo: dict = {}
        while True:
            line = randrange(lines) * _LINE
            is_write = draw() < write_ratio
            key = (line, is_write)
            op = memo.get(key)
            if op is None:
                op = make_op_unchecked(
                    n_insts, compute, _span(line, count, 0, region), is_write
                )
                memo[key] = op
            yield op
    while True:
        line = rng.randrange(lines) * _LINE
        is_write = rng.random() < spec.write_ratio
        yield WarpOp(
            n_insts=spec.insts_per_step,
            compute_cycles=spec.compute_cycles,
            mem_addrs=_span(line, spec.sectors_per_access, 0, spec.working_set),
            is_write=is_write,
        )


def pointer_chase(spec: WorkloadSpec, warp: int, total_warps: int) -> Iterator[WarpOp]:
    """Dependent scattered lookups: each step touches a few random sectors.

    ``spec.extra['fanout']`` sectors per access, each from a different line
    (a warp of threads probing different tree nodes).
    """
    rng = spec.rng_for(warp)
    lines = spec.working_set // _LINE
    fanout = max(1, spec.extra.get("fanout", 8))
    #: probability a probe stays in the hot top levels of the structure.
    hot_fraction = spec.extra.get("hot_fraction", 0.0)
    hot_lines = max(1, spec.extra.get("hot_bytes", 256 * 1024) // _LINE)
    # every address term is a multiple of _SECTOR, so construction-time
    # validation proves nothing; skip it under batching.
    make = make_op_unchecked if fastpath.BATCHING else WarpOp
    while True:
        addrs = tuple(
            (
                rng.randrange(hot_lines)
                if rng.random() < hot_fraction
                else rng.randrange(lines)
            )
            * _LINE
            + rng.randrange(params.SECTORS_PER_LINE) * _SECTOR
            for _ in range(fanout)
        )
        is_write = rng.random() < spec.write_ratio
        yield make(spec.insts_per_step, spec.compute_cycles, addrs, is_write)


def stencil(spec: WorkloadSpec, warp: int, total_warps: int) -> Iterator[WarpOp]:
    """Structured-grid sweep over several arrays plus a write stream.

    ``spec.extra['arrays']`` streams partition the working set; all but the
    last are read at a common index, then the output line is written with
    probability ``write_ratio``.
    """
    rng = spec.rng_for(warp)
    arrays = max(2, spec.extra.get("arrays", 3))
    array_bytes = (spec.working_set // arrays) // _LINE * _LINE
    lines = array_bytes // _LINE
    span = max(1, -(-spec.sectors_per_access * _SECTOR // _LINE))
    if fastpath.BATCHING and fastpath.HAVE_NUMPY:
        return _stencil_epoch(spec, warp, total_warps, rng, arrays, array_bytes, lines, span)
    return _stencil_scalar(spec, warp, total_warps, rng, arrays, array_bytes, lines, span)


def _stencil_scalar(
    spec, warp, total_warps, rng, arrays, array_bytes, lines, span
) -> Iterator[WarpOp]:
    i = 0
    while True:
        index = _stream_index(spec, warp, total_warps, i, lines, span)
        for a in range(arrays - 1):
            base = a * array_bytes + index * _LINE
            yield WarpOp(
                n_insts=spec.insts_per_step,
                compute_cycles=spec.compute_cycles,
                mem_addrs=_span(base, spec.sectors_per_access, a * array_bytes, array_bytes),
                is_write=False,
            )
        out_base = (arrays - 1) * array_bytes + index * _LINE
        yield WarpOp(
            n_insts=spec.insts_per_step,
            compute_cycles=spec.compute_cycles,
            mem_addrs=_span(
                out_base, spec.sectors_per_access, (arrays - 1) * array_bytes, array_bytes
            ),
            is_write=rng.random() < spec.write_ratio,
        )
        i += 1


def _stencil_epoch(
    spec, warp, total_warps, rng, arrays, array_bytes, lines, span
) -> Iterator[WarpOp]:
    n_insts = spec.insts_per_step
    compute = spec.compute_cycles
    count = spec.sectors_per_access
    write_ratio = spec.write_ratio
    draw = rng.random if write_ratio > 0.0 else None
    out_array = arrays - 1
    out_region_base = out_array * array_bytes
    memo: dict = {}
    start = 0
    while True:
        for index in _stream_index_epoch(spec, warp, total_warps, start, lines, span):
            row = index * _LINE
            for a in range(out_array):
                region_base = a * array_bytes
                base = region_base + row
                op = memo.get(base)  # reads: is_write is always False
                if op is None:
                    op = make_op_unchecked(
                        n_insts, compute, _span(base, count, region_base, array_bytes), False
                    )
                    memo[base] = op
                yield op
            out_base = out_region_base + row
            is_write = draw() < write_ratio if draw is not None else False
            key = (out_base, is_write)
            op = memo.get(key)
            if op is None:
                op = make_op_unchecked(
                    n_insts,
                    compute,
                    _span(out_base, count, out_region_base, array_bytes),
                    is_write,
                )
                memo[key] = op
            yield op
        start += EPOCH_STEPS


def compute_only(spec: WorkloadSpec, warp: int, total_warps: int) -> Iterator[WarpOp]:
    """Pure-compute phases interleaved with rare tiled accesses."""
    mem_every = max(1, spec.extra.get("mem_every", 8))
    inner = tiled(spec, warp, total_warps)
    if fastpath.BATCHING:
        # the compute op is constant: one frozen instance serves every step.
        compute_op = WarpOp(n_insts=spec.insts_per_step, compute_cycles=spec.compute_cycles)
        i = 0
        while True:
            if i % mem_every == mem_every - 1:
                yield next(inner)
            else:
                yield compute_op
            i += 1
    i = 0
    while True:
        if i % mem_every == mem_every - 1:
            yield next(inner)
        else:
            yield WarpOp(n_insts=spec.insts_per_step, compute_cycles=spec.compute_cycles)
        i += 1


PATTERNS = {
    "streaming": streaming,
    "tiled": tiled,
    "mixed": mixed,
    "random": random_access,
    "pointer_chase": pointer_chase,
    "stencil": stencil,
    "compute": compute_only,
}
