"""Warp-trace recording and replay.

The synthetic generators in :mod:`repro.workloads.patterns` are the default
workload source, but the simulator is trace-driven at heart: any per-warp
stream of :class:`WarpOp` works.  This module materializes generator output
into a portable JSON-lines file and loads such files back as replayable
:class:`WorkloadSpec` objects — e.g. to pin an exact instruction stream
across machine, or to feed in traces captured from a real simulator.

File format: first line is a JSON header
``{"name", "category", "warps_per_sm", "num_sms", "steps_per_warp"}``;
every following line is one op:
``[warp_index, n_insts, compute_cycles, is_write, [addr, ...]]``
where ``warp_index = sm_id * warps_per_sm + warp_id``.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Dict, List

from repro.workloads.base import WarpOp, WorkloadSpec


def record_trace(
    spec: WorkloadSpec,
    path: str | Path,
    num_sms: int,
    warps_per_sm: int | None = None,
    steps_per_warp: int = 1000,
) -> Path:
    """Materialize *steps_per_warp* ops of every warp of *spec* to *path*."""
    path = Path(path)
    warps = warps_per_sm if warps_per_sm is not None else spec.warps_per_sm
    with path.open("w") as handle:
        header = {
            "name": spec.name,
            "category": spec.category,
            "warps_per_sm": warps,
            "num_sms": num_sms,
            "steps_per_warp": steps_per_warp,
        }
        handle.write(json.dumps(header) + "\n")
        for sm in range(num_sms):
            for warp in range(warps):
                stream = spec.warp_trace(sm, warp, num_sms, warps)
                index = sm * warps + warp
                for op in itertools.islice(stream, steps_per_warp):
                    handle.write(
                        json.dumps(
                            [
                                index,
                                op.n_insts,
                                op.compute_cycles,
                                int(op.is_write),
                                list(op.mem_addrs),
                            ]
                        )
                        + "\n"
                    )
    return path


def load_trace(path: str | Path, loop: bool = True) -> WorkloadSpec:
    """Load a recorded trace as a replayable workload.

    With ``loop=True`` (default) each warp's recorded ops repeat forever,
    matching the infinite-stream contract of the simulator; otherwise warps
    finish after their recorded steps.
    """
    path = Path(path)
    with path.open() as handle:
        header = json.loads(handle.readline())
        ops_by_warp: Dict[int, List[WarpOp]] = {}
        for line in handle:
            index, n_insts, compute, is_write, addrs = json.loads(line)
            ops_by_warp.setdefault(index, []).append(
                WarpOp(
                    n_insts=n_insts,
                    compute_cycles=compute,
                    mem_addrs=tuple(addrs),
                    is_write=bool(is_write),
                )
            )

    recorded_warps = header["warps_per_sm"]

    def factory(spec: WorkloadSpec, global_warp: int, total_warps: int):
        # reuse recorded warps cyclically if the run asks for more of them
        ops = ops_by_warp.get(global_warp % max(1, len(ops_by_warp)), [])
        if not ops:
            return iter(())
        if loop:
            return itertools.cycle(ops)
        return iter(ops)

    max_addr = max(
        (addr for ops in ops_by_warp.values() for op in ops for addr in op.mem_addrs),
        default=0,
    )
    working_set = max(128, -(-(max_addr + 32) // 128) * 128)
    return WorkloadSpec(
        name=f"{header['name']}@trace",
        category=header["category"],
        trace_factory=factory,
        warps_per_sm=recorded_warps,
        working_set=working_set,
    )
