"""Workload model: per-warp instruction/memory traces.

A workload is described by a :class:`WorkloadSpec`; the simulator asks it
for one infinite trace per warp.  Each trace element is a :class:`WarpOp`:
some warp instructions (issued over the SM's issue port), an optional
dependent-latency gap, and the coalesced memory accesses the instruction
produces (sector-aligned addresses, the unit GPU sectored caches operate
on).

Traces are deterministic: warp ``(sm, warp)`` of a given workload always
produces the same sequence, so two simulator configurations see identical
offered load — required for apples-to-apples normalized-IPC comparisons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Tuple

from repro.common import params

#: threads per warp; IPC is counted in thread instructions, as GPGPU-Sim does.
THREADS_PER_WARP = 32


@dataclass(frozen=True, slots=True)
class WarpOp:
    """One step of a warp: issue *n_insts*, wait, access memory.

    Slotted: the SM's issue loop reads several fields per op for millions
    of ops per run, and slot descriptors beat per-instance dict lookups
    (they also shrink the resident epoch buffers).
    """

    n_insts: int
    compute_cycles: int = 0
    mem_addrs: Tuple[int, ...] = ()
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.n_insts < 0 or self.compute_cycles < 0:
            raise ValueError("instruction/cycle counts must be non-negative")
        for addr in self.mem_addrs:
            if addr % params.SECTOR_BYTES:
                raise ValueError(f"address {addr:#x} is not sector-aligned")


#: (spec, global_warp_index, total_warps) -> infinite op stream.
TraceFactory = Callable[["WorkloadSpec", int, int], Iterator[WarpOp]]


_OP_NEW = WarpOp.__new__
_OP_SET = object.__setattr__


def make_op_unchecked(
    n_insts: int, compute_cycles: int, mem_addrs: Tuple[int, ...], is_write: bool
) -> WarpOp:
    """A :class:`WarpOp` without ``__post_init__`` validation.

    For the epoch-batched trace generators only: their address arithmetic
    produces sector-aligned addresses by construction (every term is a
    multiple of ``SECTOR_BYTES``), so re-validating each op would only
    re-prove an invariant per step.  The resulting object is
    indistinguishable from a normally-constructed ``WarpOp``.
    """
    op = _OP_NEW(WarpOp)
    _OP_SET(op, "n_insts", n_insts)
    _OP_SET(op, "compute_cycles", compute_cycles)
    _OP_SET(op, "mem_addrs", mem_addrs)
    _OP_SET(op, "is_write", is_write)
    return op


@dataclass(frozen=True)
class WorkloadSpec:
    """A named benchmark proxy.

    ``category`` follows the paper's Table IV buckets: ``"non"``,
    ``"medium"`` or ``"intensive"``.  The remaining knobs parameterize the
    access-pattern generator in :mod:`repro.workloads.patterns`.
    """

    name: str
    category: str
    trace_factory: TraceFactory
    warps_per_sm: int = 24
    #: warp instructions per trace step (compute intensity).
    insts_per_step: int = 10
    #: extra dependent-latency cycles per step.
    compute_cycles: int = 0
    #: bytes of the data working set.
    working_set: int = 64 * 1024 * 1024
    #: fraction of memory steps that are stores.
    write_ratio: float = 0.0
    #: coalescing: sectors touched per memory instruction.
    sectors_per_access: int = params.SECTORS_PER_LINE
    #: pattern-specific extras (e.g. number of streamed arrays).
    extra: dict = field(default_factory=dict)
    seed: int = 0x5ECDE

    def __post_init__(self) -> None:
        if self.category not in ("non", "medium", "intensive"):
            raise ValueError(f"unknown category {self.category!r}")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if self.working_set % params.CACHE_LINE_BYTES:
            raise ValueError("working set must be line-aligned")

    def warp_trace(self, sm_id: int, warp_id: int, num_sms: int, warps_per_sm: int) -> Iterator[WarpOp]:
        """The infinite op stream for one warp."""
        global_warp = sm_id * warps_per_sm + warp_id
        return self.trace_factory(self, global_warp, num_sms * warps_per_sm)

    def rng_for(self, global_warp: int) -> random.Random:
        return random.Random((self.seed << 20) ^ global_warp)


def global_warp_id(spec_sm: int, warp_id: int, warps_per_sm: int) -> int:
    return spec_sm * warps_per_sm + warp_id
