"""Bandwidth/throughput resource models.

A :class:`ThroughputResource` represents anything that serves work at a
fixed rate — a DRAM channel, a pipelined AES engine bank, an SM issue port.
Acquiring it reserves *occupancy* cycles starting no earlier than the
resource's next free time; contention appears as queueing delay, exactly the
mechanism behind the paper's metadata-traffic slowdowns.
"""

from __future__ import annotations

from repro.common.stats import StatGroup


class ThroughputResource:
    """A single server with deterministic service times (FCFS)."""

    def __init__(self, name: str, stats: StatGroup | None = None) -> None:
        self.name = name
        self.next_free: float = 0.0
        self.busy_cycles: float = 0.0
        self._stats = stats
        self._counts = stats.raw() if stats is not None else None

    def acquire(self, now: float, occupancy: float) -> float:
        """Reserve *occupancy* cycles; return the service start time."""
        if occupancy < 0:
            raise ValueError("occupancy must be non-negative")
        start = self.next_free if self.next_free > now else now
        self.next_free = start + occupancy
        self.busy_cycles += occupancy
        counts = self._counts
        if counts is not None:
            counts["acquisitions"] += 1.0
            counts["busy_cycles"] += occupancy
            counts["queue_delay"] += start - now
        return start

    def backlog(self, now: float) -> float:
        """Cycles of work already queued ahead of a request arriving *now*."""
        return max(0.0, self.next_free - now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of *elapsed* cycles this resource was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)
