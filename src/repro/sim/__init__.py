"""Discrete-event GPU timing simulator.

The substrate the paper's study runs on: SMs issuing warp instructions, a
sectored L2 cache with MSHRs per memory partition, an interconnect, GDDR-like
DRAM channels, and (plugged in between L2 and DRAM) the secure memory engine
of :mod:`repro.secure.engine`.
"""

from repro.sim.event import EventQueue
from repro.sim.gpu import Gpu, SimulationResult, simulate

__all__ = ["EventQueue", "Gpu", "SimulationResult", "simulate"]
