"""A memory partition: L2 bank(s), secure engine, DRAM channel.

The partition receives sector requests from the interconnect, probes its
sectored L2, and on misses pulls data through the :class:`SecureEngine`,
which in turn talks to the DRAM channel.  Dirty L2 evictions flow back out
through the engine (encryption + MAC + counter update).

Metadata is partition-local: the secure hardware is replicated per memory
controller (paper Fig. 1), so each partition keeps the counters/MACs/tree
for *its own* slice of the protected range.  Global data addresses are
compressed into a partition-local linear space (dropping the interleave
bits) before metadata addresses are derived; otherwise one 128 B metadata
block would span many partitions and be fetched redundantly by each.

Back-pressure: when the DRAM channel backlog exceeds a window, the partition
defers admitting new requests until the queue drains.  This is what makes
saturated-bandwidth workloads actually slow down instead of piling up
unbounded future work.
"""

from __future__ import annotations

from typing import Callable, List

from repro.common import params
from repro.common.config import GpuConfig
from repro.common.stats import StatGroup
from repro.secure.engine import SecureEngine
from repro.secure.layout import MetadataLayout
from repro.sim.cache import AccessResult, SectoredCache
from repro.sim.dram import make_dram_channel
from repro.sim.event import EventQueue
from repro.sim.mshr import MshrTable
from repro.sim.resource import ThroughputResource
from repro.telemetry.latency import (
    HOP_E2E,
    HOP_L2,
    HOP_MSHR,
    NULL_LATENCY,
    STALL_L2_ADMISSION,
    STALL_L2_MSHR_FULL,
)
from repro.telemetry.tracer import NULL_TRACER
from repro.telemetry.traffic import TrafficClass

ResponseCallback = Callable[[float], None]

#: cycles of queued DRAM work beyond which the partition stops admitting.
BACKLOG_WINDOW = 2048.0

#: surface the columnar delivery lane (:mod:`repro.sim.columnar`) binds at
#: lane construction and mirrors inline: admission gate + bank port state,
#: fetch geometry, the L2 MSHR bindings, address-interleave geometry, the
#: telemetry-emission flags probed per delivery, and the scalar fill
#: methods the lane delegates to once telemetry flips on at the warmup
#: boundary.  Renames here require a matching lane update; the contract
#: test in ``tests/test_fastpath_identity.py`` pins the names.
COLUMNAR_CONTRACT = (
    "_bank",
    "_bank_occupancy",
    "_hit_latency",
    "_fetch_bytes",
    "_dram_channel",
    "_l2_mshr_entries",
    "_l2_mshr_cap",
    "_l2_mshr_enabled",
    "l2_mshr",
    "_interleave_shift",
    "_partition_shift",
    "_offset_mask",
    "_lat_on",
    "_trace_on",
    "_on_fill",
    "_on_untracked_fill",
)


class MemoryPartition:
    """One of the GPU's memory partitions."""

    def __init__(
        self,
        index: int,
        config: GpuConfig,
        events: EventQueue,
        layout: MetadataLayout,
        stats: StatGroup,
        trace_hook=None,
        tracer=None,
        latency=None,
    ) -> None:
        self.index = index
        self.config = config
        self.events = events
        self.stats = stats
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._lat = latency if latency is not None else NULL_LATENCY
        self._tid = f"p{index}"
        self.dram = make_dram_channel(
            config.dram,
            config.core_clock_mhz,
            stats.child("dram"),
            tracer=tracer,
            name=f"p{index}.dram",
            latency=latency,
        )
        self.engine = SecureEngine(
            config.secure,
            config,
            self.dram,
            events,
            layout,
            stats.child("secure"),
            trace_hook=trace_hook,
            tracer=tracer,
            name=f"p{index}.engine",
            latency=latency,
        )
        self.l2 = SectoredCache(
            config.l2_cache_config(),
            stats.child("l2"),
            tclass=TrafficClass.DATA,
            tracer=tracer,
            name=f"p{index}.l2",
        )
        self.l2_mshr = MshrTable(
            config.l2_mshrs_per_partition,
            config.l2_mshr_merge_cap,
            tracer=tracer,
            name=f"p{index}.l2mshr",
            latency=latency,
            cls="DATA",
        )
        #: L2 bank service port; a bank moves one sector per core cycle, and
        #: the partition has ``l2_banks_per_partition`` of them.
        self._bank = ThroughputResource("l2-bank")
        self._bank_occupancy = 1.0 / config.l2_banks_per_partition
        self._hit_latency = config.l2_hit_latency
        self._interleave = config.partition_interleave_bytes
        self._num_partitions = config.num_partitions
        #: miss-fetch granularity: a 32 B sector, or the whole 128 B line
        #: for the non-sectored-L2 ablation.
        self._fetch_bytes = (
            params.SECTOR_BYTES if config.l2_sectored else params.CACHE_LINE_BYTES
        )
        # to_local runs per request: precompute shift/mask forms when the
        # interleave and partition count are powers of two (they are in
        # every shipped configuration; the divmod path remains for odd
        # values).
        interleave, num = self._interleave, self._num_partitions
        if (
            interleave > 0
            and interleave & (interleave - 1) == 0
            and num > 0
            and num & (num - 1) == 0
        ):
            self._interleave_shift = interleave.bit_length() - 1
            self._offset_mask = interleave - 1
            self._partition_shift = num.bit_length() - 1
        else:
            self._interleave_shift = None
            self._offset_mask = 0
            self._partition_shift = 0
        self._trace_on = self._trace.enabled
        self._trace_instant = self._trace.instant
        self._lat_on = self._lat.enabled
        #: bound latency sample buffers for this partition's fixed hops
        #: (appending directly skips the per-call key lookup in record()).
        self._e2e_pend = self._lat.channel(HOP_E2E, "DATA")
        self._l2_pend = self._lat.channel(HOP_L2, "DATA")
        self._stat_add = stats.add
        # hot-path bindings: the admission gate reads the DRAM channel's
        # next_free directly, and the L2 MSHR occupancy/capacity checks
        # avoid a property descriptor call per access.
        self._dram_channel = self.dram.channel
        self._l2_mshr_entries = self.l2_mshr._entries
        self._l2_mshr_cap = self.l2_mshr.num_entries
        self._l2_mshr_enabled = self.l2_mshr.enabled

    def to_local(self, addr: int) -> int:
        """Compress a global address into this partition's linear space."""
        shift = self._interleave_shift
        if shift is not None:
            return (
                ((addr >> shift >> self._partition_shift) << shift)
                | (addr & self._offset_mask)
            )
        chunk, offset = divmod(addr, self._interleave)
        return (chunk // self._num_partitions) * self._interleave + offset

    # ------------------------------------------------------------------

    def _admission_time(self, now: float) -> float:
        """Earliest time a new request may be admitted (back-pressure gate)."""
        backlog = self.dram.backlog(now)
        if backlog > BACKLOG_WINDOW:
            self._stat_add("admission_stalls")
            return now + (backlog - BACKLOG_WINDOW)
        return now

    def access(self, now: float, addr: int, is_write: bool, respond: ResponseCallback) -> None:
        """Handle one 32 B sector access arriving from the interconnect.

        *respond* is called with the completion time: for reads, when data
        is available to ship back; for writes, when the L2 accepted the
        store (GPU stores do not wait for DRAM).

        The global address is converted to the partition-local linear space
        up front: indexing the L2 with global addresses would leave most
        sets unused (this partition only sees addresses with its own
        interleave bits), and the secure engine's metadata is local anyway.
        """
        addr = self.to_local(addr)
        lat_on = self._lat_on
        trace_on = self._trace_on
        if trace_on:
            emit = self._trace_instant
            tid = self._tid
            emit(
                "req_issue",
                "partition",
                tid,
                {"addr": addr, "w": int(is_write)},
            )
        if lat_on or trace_on:
            # one completion wrapper covers both telemetry channels (the
            # scalar core stacked two closures); emission order on
            # completion is unchanged: the e2e latency record, then the
            # trace instant, then the caller's callback.  Both observe a
            # completion time the model computed anyway.
            inner = respond
            e2e_q, e2e_s = self._e2e_pend if lat_on else (None, None)

            def respond(
                done: float,
                _inner=inner,
                _now=now,
                _q=e2e_q,
                _s=e2e_s,
                _addr=addr,
                _w=int(is_write),
            ) -> None:
                if _q is not None:
                    _q.append(0.0)
                    _s.append(done - _now)
                if trace_on:
                    emit("req_done", "partition", tid, {"addr": _addr, "w": _w})
                _inner(done)

        # back-pressure admission gate, inlined (== _admission_time).
        channel = self._dram_channel
        backlog = channel.next_free - now
        if backlog > BACKLOG_WINDOW:
            self._stat_add("admission_stalls")
            admit = now + (backlog - BACKLOG_WINDOW)
            if lat_on:
                self._lat.stall(STALL_L2_ADMISSION, admit - now)
        else:
            admit = now
        # L2 bank port, inlined FCFS acquire (the bank has no stats group).
        bank = self._bank
        occupancy = self._bank_occupancy
        bank_start = bank.next_free if bank.next_free > admit else admit
        bank.next_free = bank_start + occupancy
        bank.busy_cycles += occupancy
        start = bank_start + occupancy
        l2_queue = bank_start - now if lat_on else 0.0
        if is_write:
            self._handle_write(start, addr, respond, l2_queue)
        else:
            self._handle_read(start, addr, respond, l2_queue)

    # ------------------------------------------------------------------

    def _handle_write(
        self, now: float, addr: int, respond: ResponseCallback, l2_queue: float = 0.0
    ) -> None:
        result = self.l2.lookup(addr, is_write=True)
        if result is not AccessResult.HIT:
            # full-sector store: allocate without fetching.
            evictions = self.l2.write_insert(addr)
            self._write_back(now, evictions)
        if self._lat_on:
            self._l2_pend[0].append(l2_queue)
            self._l2_pend[1].append(self._bank_occupancy + self._hit_latency)
        self.events.schedule_at(now + self._hit_latency, respond, now + self._hit_latency)

    def _handle_read(
        self, now: float, addr: int, respond: ResponseCallback, l2_queue: float = 0.0
    ) -> None:
        result = self.l2.lookup(addr, is_write=False)
        if result is AccessResult.HIT:
            if self._lat_on:
                self._l2_pend[0].append(l2_queue)
                self._l2_pend[1].append(self._bank_occupancy + self._hit_latency)
            done = now + self._hit_latency
            self.events.schedule_at(done, respond, done)
            return

        if self._lat_on:
            # misses pay the bank move here; the rest of their latency is
            # attributed to the MSHR / crypto / DRAM hops downstream.
            self._l2_pend[0].append(l2_queue)
            self._l2_pend[1].append(self._bank_occupancy)
        sector = addr - addr % self._fetch_bytes
        mshr_enabled = self._l2_mshr_enabled
        entries = self._l2_mshr_entries
        entry = entries.get(sector) if mshr_enabled else None
        if entry is not None:
            self._stat_add("l2_secondary_misses")
            if entry.merged < self.l2_mshr.merge_cap:
                self.l2_mshr.merge(entry, waiter=respond, now=now)
                return
            # merge cap reached: redundant fetch, no fill.
            ready = self.engine.read_sector(now, sector, self._fetch_bytes)
            self._stat_add("l2_duplicate_fetches")
            if self._trace_on:
                self._trace_instant(
                    "dup_fetch", "mshr", self.l2_mshr.name, {"addr": sector}
                )
            self.events.schedule_at(ready, respond, ready)
            return

        start = now
        full = mshr_enabled and len(entries) >= self._l2_mshr_cap
        if full:
            self._stat_add("l2_mshr_full_stalls")
            start = max(now, self.l2_mshr.earliest_ready())
            if self._lat_on:
                self._lat.stall(STALL_L2_MSHR_FULL, start - now)
                self._lat.record(HOP_MSHR, "DATA", start - now, 0.0)
        ready = self.engine.read_sector(start, sector, self._fetch_bytes)
        if mshr_enabled and len(entries) < self._l2_mshr_cap:
            self.l2_mshr.allocate(sector, ready, waiter=respond)
            self.events.schedule_at(ready, self._on_fill, sector)
        else:
            # no MSHR slot: untracked fetch, still fills the cache.
            self.events.schedule_at(ready, self._on_untracked_fill, sector, respond)

    def _on_fill(self, sector: int) -> None:
        now = self.events.now
        entry = self.l2_mshr.release(sector)
        if self._trace_on:
            self._trace_instant(
                "fill",
                "mshr",
                self.l2_mshr.name,
                {"addr": sector, "waiters": len(entry.waiters)},
            )
        evictions = self.l2.fill(sector)
        self._write_back(now, evictions)
        for respond in entry.waiters:
            respond(now)
        self.l2_mshr.recycle(entry)

    def _on_untracked_fill(self, sector: int, respond: ResponseCallback) -> None:
        now = self.events.now
        evictions = self.l2.fill(sector)
        self._write_back(now, evictions)
        respond(now)

    def _write_back(self, now: float, evictions: List) -> None:
        for eviction in evictions:
            for sector_addr in eviction.dirty_sector_addrs:
                self._stat_add("l2_writebacks")
                self.engine.write_sector(now, sector_addr, self._fetch_bytes)

    # ------------------------------------------------------------------

    def l2_miss_rate(self) -> float:
        return self.l2.miss_rate()
