"""Streaming Multiprocessor model.

An SM holds a pool of warp contexts.  Each warp repeatedly: issues a batch
of instructions over the SM's issue port (4 warp-instructions/cycle), waits
out any dependent latency, then performs its memory accesses and blocks
until they complete.  Latency tolerance — the GPU property the paper leans
on — emerges from the number of concurrently resident warps.

The SM owns a sectored, write-through L1.  Read misses are merged through a
small in-flight table (the L1's MSHRs); fills install on response.  Because
the L1 is write-through/no-allocate it never holds dirty data, so evictions
are silently dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from repro.common import params
from repro.common.config import GpuConfig
from repro.common.stats import StatGroup
from repro.sim.cache import AccessResult, SectoredCache
from repro.sim.event import EventQueue
from repro.sim.resource import ThroughputResource
from repro.telemetry.latency import HOP_L1, HOP_SM, NULL_LATENCY, STALL_L1_MSHR_FULL
from repro.telemetry.traffic import TrafficClass
from repro.workloads.base import THREADS_PER_WARP, WarpOp

#: send(now, sector_addr, is_write, respond) — provided by the GPU top level.
SendFn = Callable[[float, int, bool, Callable[[float], None]], None]

#: cap on how many pure-compute ops are batched into one event.
_COMPUTE_BATCH_CAP = 64

#: sector alignment mask (SECTOR_BYTES is a power of two).
_SECTOR_ALIGN = ~(params.SECTOR_BYTES - 1)


class _WarpState:
    __slots__ = ("warp_id", "trace", "pending", "resume_at")

    def __init__(self, warp_id: int, trace: Iterator[WarpOp]) -> None:
        self.warp_id = warp_id
        self.trace = trace
        self.pending = 0
        self.resume_at = 0.0


class StreamingMultiprocessor:
    """One SM: warp pool, issue port, L1."""

    def __init__(
        self,
        sm_id: int,
        config: GpuConfig,
        events: EventQueue,
        send: SendFn,
        stats: StatGroup,
        warp_traces: List[Iterator[WarpOp]],
        latency=None,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.events = events
        self.send = send
        self.stats = stats
        self.issue = ThroughputResource(f"sm{sm_id}-issue")
        self.issue_width = config.sm_issue_width
        self._lat = latency if latency is not None else NULL_LATENCY
        self._lat_on = self._lat.enabled
        self.l1 = SectoredCache(
            config.l1_config,
            stats.child("l1"),
            tclass=TrafficClass.DATA,
            latency=latency,
            hop=HOP_L1,
            hit_latency=config.l1_config.hit_latency,
        )
        self._l1_merge_cap = config.l1_config.mshr_merge_cap
        self._l1_mshrs = config.l1_config.num_mshrs
        self._l1_inflight: Dict[int, List[Callable[[float], None]]] = {}
        self._l1_hit_latency = config.l1_config.hit_latency
        self.instructions = 0
        self._warps = [
            _WarpState(i, trace) for i, trace in enumerate(warp_traces)
        ]
        self._stat_add = stats.add
        self._counts = stats.raw()
        self._issue_acquire = self.issue.acquire

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first step of every warp, lightly staggered."""
        for warp in self._warps:
            self.events.schedule(warp.warp_id % 8, self._step, warp)

    def _step(self, warp: _WarpState) -> None:
        """Issue ops until the warp reaches a memory access (batched).

        Port occupancy is always acquired at *now* (keeping the FCFS
        resource's arrival order sane across warps); the warp's own
        dependent latency accumulates separately on top.
        """
        now = self.events.now
        port_ready = now
        latency = 0.0
        for _ in range(_COMPUTE_BATCH_CAP):
            op = next(warp.trace, None)
            if op is None:
                self._stat_add("warps_finished")
                # advance the clock past the work already issued so finite
                # traces still account their issue/compute time.
                cursor = max(port_ready, now) + latency
                if cursor > now:
                    self.events.schedule_at(cursor, lambda: None)
                return
            occupancy = op.n_insts / self.issue_width
            start = self._issue_acquire(now, occupancy)
            port_ready = max(port_ready, start + occupancy)
            latency += op.compute_cycles
            self.instructions += op.n_insts * THREADS_PER_WARP
            if op.mem_addrs:
                cursor = max(port_ready, now) + latency
                if cursor > now:
                    self.events.schedule_at(cursor, self._issue_memory, warp, op)
                else:
                    self._issue_memory(warp, op)
                return
        cursor = max(port_ready, now) + latency
        self.events.schedule_at(max(cursor, now + 1), self._step, warp)

    # ------------------------------------------------------------------

    def _issue_memory(self, warp: _WarpState, op: WarpOp) -> None:
        now = self.events.now
        warp.pending = 0
        warp.resume_at = now
        hit_ready = now
        for addr in op.mem_addrs:
            sector = addr & _SECTOR_ALIGN
            if op.is_write:
                self._write_sector(now, warp, sector)
                continue
            ready = self._read_sector(now, warp, sector)
            if ready is not None:
                hit_ready = max(hit_ready, ready)
        if warp.pending == 0:
            self.events.schedule_at(max(hit_ready, now), self._step, warp)
        else:
            warp.resume_at = max(warp.resume_at, hit_ready)

    def _write_sector(self, now: float, warp: _WarpState, sector: int) -> None:
        """Write-through store: forward to L2, wait for acceptance."""
        self.l1.lookup(sector, is_write=False)  # probe only; data updated in place
        self._counts["stores"] += 1.0
        warp.pending += 1
        self.send(now, sector, True, self._make_warp_cb(warp))

    def _read_sector(self, now: float, warp: _WarpState, sector: int) -> float | None:
        """Load path; returns the ready time for L1 hits, None if pending."""
        result = self.l1.lookup(sector, is_write=False)
        self._counts["loads"] += 1.0
        if result is AccessResult.HIT:
            return now + self._l1_hit_latency

        warp.pending += 1
        warp_cb = self._make_warp_cb(warp)
        if self._lat_on:
            # observe the SM-side round trip of the read miss (issue ->
            # fill/response); pure observation, never alters the callback's
            # timing.
            inner = warp_cb
            record = self._lat.record

            def warp_cb(time: float, _inner=inner, _now=now, _record=record) -> None:
                _record(HOP_SM, "DATA", 0.0, time - _now)
                _inner(time)

        waiters = self._l1_inflight.get(sector)
        if waiters is not None:
            if len(waiters) < self._l1_merge_cap:
                waiters.append(warp_cb)
            else:
                self._stat_add("l1_unmerged")
                self.send(now, sector, False, warp_cb)
            return None
        if len(self._l1_inflight) < self._l1_mshrs:
            self._l1_inflight[sector] = [warp_cb]
            self.send(now, sector, False, lambda t, s=sector: self._on_l1_fill(s, t))
        else:
            self._stat_add("l1_mshr_full")
            if self._lat_on:
                # the warp rides an untracked (unmergeable) fetch: charge its
                # whole round trip to L1 MSHR exhaustion.
                inner_full = warp_cb
                stall = self._lat.stall

                def warp_cb(
                    time: float, _inner=inner_full, _now=now, _stall=stall
                ) -> None:
                    _stall(STALL_L1_MSHR_FULL, time - _now)
                    _inner(time)

            self.send(now, sector, False, warp_cb)
        return None

    def _on_l1_fill(self, sector: int, time: float) -> None:
        """A missed sector returned: install it and wake the merged waiters."""
        self.l1.fill(sector)  # write-through L1: evictions are clean, dropped
        for waiter in self._l1_inflight.pop(sector, ()):
            waiter(time)

    def _make_warp_cb(self, warp: _WarpState) -> Callable[[float], None]:
        def done(time: float) -> None:
            warp.pending -= 1
            warp.resume_at = max(warp.resume_at, time)
            if warp.pending == 0:
                self.events.schedule_at(
                    max(warp.resume_at, self.events.now), self._step, warp
                )

        return done
