"""Streaming Multiprocessor model.

An SM holds a pool of warp contexts.  Each warp repeatedly: issues a batch
of instructions over the SM's issue port (4 warp-instructions/cycle), waits
out any dependent latency, then performs its memory accesses and blocks
until they complete.  Latency tolerance — the GPU property the paper leans
on — emerges from the number of concurrently resident warps.

The SM owns a sectored, write-through L1.  Read misses are merged through a
small in-flight table (the L1's MSHRs); fills install on response.  Because
the L1 is write-through/no-allocate it never holds dirty data, so evictions
are silently dropped.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, Iterator, List

from repro.common import params
from repro.common.config import GpuConfig
from repro.common.stats import StatGroup
from repro.sim import fastpath
from repro.sim.cache import AccessResult, SectoredCache, _Line
from repro.sim.event import EventQueue
from repro.sim.resource import ThroughputResource
from repro.telemetry.latency import HOP_L1, HOP_SM, NULL_LATENCY, STALL_L1_MSHR_FULL
from repro.telemetry.traffic import TrafficClass
from repro.workloads.base import THREADS_PER_WARP, WarpOp

#: send(now, sector_addr, is_write, respond) — provided by the GPU top level.
SendFn = Callable[[float, int, bool, Callable[[float], None]], None]

#: cap on how many pure-compute ops are batched into one event.
_COMPUTE_BATCH_CAP = 64

#: sector alignment mask (SECTOR_BYTES is a power of two).
_SECTOR_ALIGN = ~(params.SECTOR_BYTES - 1)


class _WarpState:
    __slots__ = ("warp_id", "trace", "pending", "resume_at", "done")

    def __init__(self, warp_id: int, trace: Iterator[WarpOp]) -> None:
        self.warp_id = warp_id
        self.trace = trace
        self.pending = 0
        self.resume_at = 0.0
        #: persistent completion callback, bound once by the SM — the scalar
        #: core used to build a fresh closure per memory access.
        self.done: Callable[[float], None] | None = None


class StreamingMultiprocessor:
    """One SM: warp pool, issue port, L1."""

    def __init__(
        self,
        sm_id: int,
        config: GpuConfig,
        events: EventQueue,
        send: SendFn,
        stats: StatGroup,
        warp_traces: List[Iterator[WarpOp]],
        latency=None,
        send_batch=None,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.events = events
        self.send = send
        self.stats = stats
        self.issue = ThroughputResource(f"sm{sm_id}-issue")
        self.issue_width = config.sm_issue_width
        self._lat = latency if latency is not None else NULL_LATENCY
        self._lat_on = self._lat.enabled
        #: bound (queue, service) sample buffers for the sm_mem hop.
        self._sm_pend = self._lat.channel(HOP_SM, "DATA")
        self.l1 = SectoredCache(
            config.l1_config,
            stats.child("l1"),
            tclass=TrafficClass.DATA,
            latency=latency,
            hop=HOP_L1,
            hit_latency=config.l1_config.hit_latency,
        )
        self._l1_merge_cap = config.l1_config.mshr_merge_cap
        self._l1_mshrs = config.l1_config.num_mshrs
        self._l1_inflight: Dict[int, List[Callable[[float], None]]] = {}
        self._l1_hit_latency = config.l1_config.hit_latency
        # L1 probe/fill geometry, bound for the inline fast path (taken
        # when the shape is power-of-two and L1 telemetry is off; the
        # generic SectoredCache methods cover everything else).
        l1 = self.l1
        self._l1_fast = l1._line_shift is not None and (
            not l1._sectored or l1._spl_mask is not None
        )
        self._l1_counts = l1._counts
        self._l1_single = l1._single_set
        self._l1_sets = l1._sets
        self._l1_nsets = l1._num_sets
        self._l1_shift = l1._line_shift
        self._l1_sector_shift = l1._sector_shift
        self._l1_spl_mask = l1._spl_mask
        self._l1_sectored = l1._sectored
        self._l1_assoc = l1._assoc
        self._l1_full_mask = l1._full_mask
        self._l1_evict = l1._evict_lru
        self.instructions = 0
        self._warps = [
            _WarpState(i, trace) for i, trace in enumerate(warp_traces)
        ]
        for warp in self._warps:
            warp.done = self._make_warp_cb(warp)
        self._stat_add = stats.add
        self._counts = stats.raw()
        #: grouped crossbar delivery (one scheduled event per memory op
        #: instead of one per sector); provided by the GPU top level when
        #: the batched core is on, None routes through the scalar path.
        self.send_batch = send_batch if fastpath.BATCHING else None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first step of every warp, lightly staggered."""
        for warp in self._warps:
            self.events.schedule(warp.warp_id % 8, self._step, warp)

    def _step(self, warp: _WarpState) -> None:
        """Issue ops until the warp reaches a memory access (batched).

        Port occupancy is always acquired at *now* (keeping the FCFS
        resource's arrival order sane across warps); the warp's own
        dependent latency accumulates separately on top.
        """
        now = self.events.now
        # port_ready starts at now and only grows (acquire never returns a
        # start before now), so the scalar core's max(port_ready, now) is a
        # no-op and is dropped here.
        port_ready = now
        latency = 0.0
        issue = self.issue
        width = self.issue_width
        for _ in range(_COMPUTE_BATCH_CAP):
            op = next(warp.trace, None)
            if op is None:
                self._stat_add("warps_finished")
                # advance the clock past the work already issued so finite
                # traces still account their issue/compute time.
                cursor = port_ready + latency
                if cursor > now:
                    self.events.schedule_at(cursor, lambda: None)
                return
            # inline ThroughputResource.acquire — the issue port carries no
            # stats group, so reservation is just the FCFS cursor bump.
            occupancy = op.n_insts / width
            next_free = issue.next_free
            start = next_free if next_free > now else now
            issue.next_free = start + occupancy
            issue.busy_cycles += occupancy
            done = start + occupancy
            if done > port_ready:
                port_ready = done
            latency += op.compute_cycles
            self.instructions += op.n_insts * THREADS_PER_WARP
            if op.mem_addrs:
                cursor = port_ready + latency
                if cursor > now:
                    self.events.schedule_at(cursor, self._issue_memory, warp, op)
                else:
                    self._issue_memory(warp, op)
                return
        cursor = port_ready + latency
        floor = now + 1
        self.events.schedule_at(cursor if cursor >= floor else floor, self._step, warp)

    # ------------------------------------------------------------------

    def _issue_memory(self, warp: _WarpState, op: WarpOp) -> None:
        """Resolve one memory op's sectors against the L1 and ship the rest.

        All misses of the op leave as one grouped crossbar delivery (they
        were consecutive same-cycle sends in the scalar core, so grouping
        cannot reorder anything); the scalar per-sector path remains for
        builds without batching.
        """
        now = self.events.now
        warp.pending = 0
        warp.resume_at = now
        hit_ready = now
        counts = self._counts
        l1 = self.l1
        l1_lookup = l1.lookup
        inflight = self._l1_inflight
        hit_latency = self._l1_hit_latency
        lat_on = self._lat_on
        is_write = op.is_write
        warp_cb = warp.done
        lat_cb = None
        batch = self.events.borrow_list() if self.send_batch is not None else None
        send = self.send
        # inline L1 probe: same stat updates and LRU motion as
        # SectoredCache.lookup, valid only while L1 telemetry is off (a hit
        # records a latency sample and traces emit per-probe events).
        fast = self._l1_fast and not l1._lat_on and not l1._trace_on
        l1c = self._l1_counts
        l1_single = self._l1_single
        l1_sets = self._l1_sets
        l1_nsets = self._l1_nsets
        l1_shift = self._l1_shift
        l1_sshift = self._l1_sector_shift
        l1_smask = self._l1_spl_mask
        l1_sectored = self._l1_sectored
        for addr in op.mem_addrs:
            sector = addr & _SECTOR_ALIGN
            if fast:
                tag = sector >> l1_shift
                cache_set = l1_single
                if cache_set is None:
                    cache_set = l1_sets[tag % l1_nsets]
                line = cache_set.get(tag)
                l1c["accesses"] += 1.0
                if line is None:
                    l1c["misses"] += 1.0
                    hit = False
                else:
                    cache_set.move_to_end(tag)
                    if l1_sectored:
                        bit = 1 << ((sector >> l1_sshift) & l1_smask)
                    else:
                        bit = 1
                    if line.valid_mask & bit:
                        l1c["hits"] += 1.0
                        hit = True
                    else:
                        l1c["misses"] += 1.0
                        l1c["sector_misses"] += 1.0
                        hit = False
            else:
                # probe only — write data is updated in place downstream
                hit = l1_lookup(sector, is_write=False) is AccessResult.HIT
            if is_write:
                counts["stores"] += 1.0
                warp.pending += 1
                if batch is None:
                    send(now, sector, True, warp_cb)
                else:
                    batch.append((sector, True, warp_cb))
                continue
            counts["loads"] += 1.0
            if hit:
                ready = now + hit_latency
                if ready > hit_ready:
                    hit_ready = ready
                continue

            warp.pending += 1
            cb = warp_cb
            if lat_on:
                # observe the SM-side round trip of the read miss (issue ->
                # fill/response); pure observation, never alters the
                # callback's timing.  One wrapper serves the whole op: every
                # registration fires once, so the records are identical to
                # the scalar core's per-access wrappers.
                if lat_cb is None:
                    sm_q, sm_s = self._sm_pend

                    def lat_cb(
                        time: float, _inner=warp_cb, _now=now, _q=sm_q, _s=sm_s
                    ) -> None:
                        _q.append(0.0)
                        _s.append(time - _now)
                        _inner(time)

                cb = lat_cb

            waiters = inflight.get(sector)
            if waiters is not None:
                if len(waiters) < self._l1_merge_cap:
                    waiters.append(cb)
                else:
                    self._stat_add("l1_unmerged")
                    if batch is None:
                        send(now, sector, False, cb)
                    else:
                        batch.append((sector, False, cb))
                continue
            if len(inflight) < self._l1_mshrs:
                inflight[sector] = [cb]
                fill_cb = partial(self._on_l1_fill, sector)
                if batch is None:
                    send(now, sector, False, fill_cb)
                else:
                    batch.append((sector, False, fill_cb))
            else:
                self._stat_add("l1_mshr_full")
                if lat_on:
                    # the warp rides an untracked (unmergeable) fetch: charge
                    # its whole round trip to L1 MSHR exhaustion.
                    stall = self._lat.stall

                    def cb(time: float, _inner=cb, _now=now, _stall=stall) -> None:
                        _stall(STALL_L1_MSHR_FULL, time - _now)
                        _inner(time)

                if batch is None:
                    send(now, sector, False, cb)
                else:
                    batch.append((sector, False, cb))
        if batch is not None:
            if batch:
                self.send_batch(now, batch)
            else:
                self.events.recycle_list(batch)
        # hit_ready starts at now and only grows, so it already floors at now.
        if warp.pending == 0:
            self.events.schedule_at(hit_ready, self._step, warp)
        elif hit_ready > warp.resume_at:
            warp.resume_at = hit_ready

    def _on_l1_fill(self, sector: int, time: float) -> None:
        """A missed sector returned: install it and wake the merged waiters.

        The install mirrors :meth:`SectoredCache.fill` inline (fill emits no
        telemetry — only counts and eviction stats — so the inline path is
        gated purely on geometry).  Write-through L1: evictions are clean
        and dropped either way.
        """
        if self._l1_fast:
            tag = sector >> self._l1_shift
            cache_set = self._l1_single
            if cache_set is None:
                cache_set = self._l1_sets[tag % self._l1_nsets]
            line = cache_set.get(tag)
            if line is None:
                if len(cache_set) >= self._l1_assoc:
                    self._l1_evict(cache_set)
                line = _Line()
                cache_set[tag] = line
            if self._l1_sectored:
                line.valid_mask |= 1 << (
                    (sector >> self._l1_sector_shift) & self._l1_spl_mask
                )
            else:
                line.valid_mask |= self._l1_full_mask
            cache_set.move_to_end(tag)
            self._l1_counts["fills"] += 1.0
        else:
            self.l1.fill(sector)
        for waiter in self._l1_inflight.pop(sector, ()):
            waiter(time)

    def _make_warp_cb(self, warp: _WarpState) -> Callable[[float], None]:
        def done(time: float) -> None:
            warp.pending -= 1
            if time > warp.resume_at:
                warp.resume_at = time
            if warp.pending == 0:
                resume = warp.resume_at
                now = self.events.now
                self.events.schedule_at(
                    resume if resume >= now else now, self._step, warp
                )

        return done
