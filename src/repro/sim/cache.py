"""Set-associative caches with optional sectoring.

GPUs use sectored caches (one 128 B line = four 32 B sectors, each fetched
independently) to save bandwidth; the paper shows this is exactly what makes
metadata caches suffer secondary misses.  The same class models the L2
(sectored) and the metadata caches (non-sectored, allocate-on-fill, whole
128 B lines).

State-change discipline: ``lookup`` never allocates.  Missed lines/sectors
are installed later via ``fill`` (when the memory response arrives) or
``write_insert`` (full-sector writes need no fetch).  This deferred-fill
protocol is what lets the MSHR layer observe secondary misses.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Set

from repro.common.config import CacheConfig
from repro.common.stats import StatGroup
from repro.telemetry.latency import NULL_LATENCY
from repro.telemetry.tracer import NULL_TRACER
from repro.telemetry.traffic import TrafficClass


def _log2_or_none(value: int) -> int | None:
    """``log2(value)`` when *value* is a positive power of two, else None."""
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


@lru_cache(maxsize=256)
def _index_geometry(
    line_bytes: int, sector_bytes: int, sectors_per_line: int
) -> tuple[int | None, int | None, int | None, int]:
    """Derived index geometry shared by every cache with the same shape.

    Returns ``(line_shift, sector_shift, sectors-per-line mask, full sector
    mask)``.  Pure arithmetic over the config, memoized process-wide so the
    many caches built across a sweep (L2 + three metadata caches per
    partition per point) share one computation per distinct shape.
    """
    line_shift = _log2_or_none(line_bytes)
    sector_shift = _log2_or_none(sector_bytes)
    spl_mask = (
        sectors_per_line - 1
        if sector_shift is not None and _log2_or_none(sectors_per_line) is not None
        else None
    )
    return line_shift, sector_shift, spl_mask, (1 << sectors_per_line) - 1


class AccessResult(enum.Enum):
    HIT = "hit"
    #: tag present but the requested sector is not valid (sectored caches).
    SECTOR_MISS = "sector_miss"
    MISS = "miss"


@dataclass
class Eviction:
    """A victim line leaving the cache; lists what must be written back."""

    line_addr: int
    dirty_sector_addrs: List[int] = field(default_factory=list)

    @property
    def dirty(self) -> bool:
        return bool(self.dirty_sector_addrs)


class _Line:
    __slots__ = ("valid_mask", "dirty_mask")

    def __init__(self) -> None:
        self.valid_mask = 0
        self.dirty_mask = 0


class SectoredCache:
    """An LRU set-associative cache, optionally sectored."""

    def __init__(
        self,
        config: CacheConfig,
        stats: StatGroup | None = None,
        tclass: TrafficClass | None = None,
        tracer=None,
        name: str = "cache",
        latency=None,
        hop: str | None = None,
        hit_latency: float = 0.0,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else StatGroup("cache")
        #: which DRAM traffic class this cache's misses generate (None for
        #: shared/unified caches whose accesses carry their own class).
        self.tclass = tclass
        self.name = name
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._cls_label = tclass.name if tclass is not None else "META"
        #: with a latency recorder and a hop name bound, every lookup hit
        #: records its (zero-queue) service time under that hop — the L1
        #: uses this; caches whose hit timing is owned by their caller (L2,
        #: metadata caches) leave *hop* unset and record nothing here.
        self._lat = latency if latency is not None else NULL_LATENCY
        self._hop = hop
        self._hit_latency = hit_latency
        self._lat_on = self._lat.enabled and hop is not None
        self._sets: List[OrderedDict[int, _Line]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._assoc = max(1, config.associativity)
        self._sectored = config.sectored
        self._sector_bytes = config.sector_bytes
        self._sectors_per_line = config.sectors_per_line
        # precomputed index geometry: lines are always a power of two wide,
        # so the tag is a shift; set counts need not be (the L2 bank has 96
        # sets), so set selection keeps a modulo unless there is one set.
        (
            self._line_shift,
            self._sector_shift,
            self._spl_mask,
            self._full_mask,
        ) = _index_geometry(
            self._line_bytes, self._sector_bytes, self._sectors_per_line
        )
        self._single_set = self._sets[0] if self._num_sets == 1 else None
        # bound once: stats/trace indirections are per-access costs.
        self._stat_add = self.stats.add
        self._counts = self.stats.raw()
        self._trace_on = self._trace.enabled
        self._trace_instant = self._trace.instant

    # -- address helpers ------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr - addr % self._line_bytes

    def _set_and_tag(self, line_addr: int) -> tuple[OrderedDict[int, _Line], int]:
        line_index = line_addr // self._line_bytes
        return self._sets[line_index % self._num_sets], line_index

    def _sector_bit(self, addr: int) -> int:
        if not self._sectored:
            return 1
        if self._sector_shift is not None and self._spl_mask is not None:
            return 1 << ((addr >> self._sector_shift) & self._spl_mask)
        return 1 << ((addr % self._line_bytes) // self._sector_bytes)

    def _locate(self, addr: int) -> tuple[OrderedDict[int, _Line], int]:
        """Set/tag for *addr* via the precomputed shift (hot-path inline)."""
        shift = self._line_shift
        tag = addr >> shift if shift is not None else addr // self._line_bytes
        cache_set = self._single_set
        if cache_set is None:
            cache_set = self._sets[tag % self._num_sets]
        return cache_set, tag

    # -- operations -----------------------------------------------------------

    def lookup(self, addr: int, is_write: bool = False) -> AccessResult:
        """Probe the cache; update LRU and dirty state on hit."""
        shift = self._line_shift
        tag = addr >> shift if shift is not None else addr // self._line_bytes
        cache_set = self._single_set
        if cache_set is None:
            cache_set = self._sets[tag % self._num_sets]
        line = cache_set.get(tag)
        counts = self._counts
        counts["accesses"] += 1.0
        if line is None:
            counts["misses"] += 1.0
            if self._trace_on:
                self._trace_instant(
                    "miss", "cache", self.name, {"addr": addr, "cls": self._cls_label}
                )
            return AccessResult.MISS
        cache_set.move_to_end(tag)
        if not self._sectored:
            bit = 1
        elif self._spl_mask is not None:
            bit = 1 << ((addr >> self._sector_shift) & self._spl_mask)
        else:
            bit = self._sector_bit(addr)
        if not line.valid_mask & bit:
            counts["misses"] += 1.0
            counts["sector_misses"] += 1.0
            if self._trace_on:
                self._trace_instant(
                    "sector_miss",
                    "cache",
                    self.name,
                    {"addr": addr, "cls": self._cls_label},
                )
            return AccessResult.SECTOR_MISS
        if is_write:
            line.dirty_mask |= bit
        counts["hits"] += 1.0
        if self._lat_on:
            self._lat.record(self._hop, self._cls_label, 0.0, self._hit_latency)
        if self._trace_on:
            self._trace_instant(
                "hit", "cache", self.name, {"addr": addr, "cls": self._cls_label}
            )
        return AccessResult.HIT

    def contains(self, addr: int) -> bool:
        """Non-mutating probe (no LRU update, no stats)."""
        cache_set, tag = self._locate(addr)
        line = cache_set.get(tag)
        return line is not None and bool(line.valid_mask & self._sector_bit(addr))

    def fill(self, addr: int, dirty: bool = False) -> List[Eviction]:
        """Install the sector (or whole line, if non-sectored) for *addr*.

        Returns evictions performed to make room (at most one).  Fills run
        on every miss response (L1, L2, and metadata caches), so the set/
        tag/sector-bit geometry is inlined here just as in :meth:`lookup`.
        """
        shift = self._line_shift
        tag = addr >> shift if shift is not None else addr // self._line_bytes
        cache_set = self._single_set
        if cache_set is None:
            cache_set = self._sets[tag % self._num_sets]
        evictions: List[Eviction] = []
        line = cache_set.get(tag)
        if line is None:
            if len(cache_set) >= self._assoc:
                evictions.append(self._evict_lru(cache_set))
            line = _Line()
            cache_set[tag] = line
        if not self._sectored:
            bit = self._full_mask
        elif self._spl_mask is not None:
            bit = 1 << ((addr >> self._sector_shift) & self._spl_mask)
        else:
            bit = self._sector_bit(addr)
        line.valid_mask |= bit
        if dirty:
            line.dirty_mask |= bit
        cache_set.move_to_end(tag)
        self._counts["fills"] += 1.0
        return evictions

    def write_insert(self, addr: int) -> List[Eviction]:
        """Allocate a full-sector write without fetching (write no-allocate-read)."""
        return self.fill(addr, dirty=True)

    def mark_dirty(self, addr: int) -> bool:
        """Set the dirty bit for *addr* if resident; returns residency."""
        cache_set, tag = self._locate(addr)
        line = cache_set.get(tag)
        bit = self._sector_bit(addr)
        if line is None or not line.valid_mask & bit:
            return False
        line.dirty_mask |= bit
        return True

    def _evict_lru(self, cache_set: OrderedDict[int, _Line]) -> Eviction:
        tag, line = next(iter(cache_set.items()))
        del cache_set[tag]
        line_addr = tag * self._line_bytes
        dirty_addrs: List[int] = []
        if line.dirty_mask:
            if self._sectored:
                for i in range(self._sectors_per_line):
                    if line.dirty_mask & (1 << i):
                        dirty_addrs.append(line_addr + i * self._sector_bytes)
            else:
                dirty_addrs.append(line_addr)
        self.stats.add("evictions")
        if dirty_addrs:
            self.stats.add("dirty_evictions")
        return Eviction(line_addr=line_addr, dirty_sector_addrs=dirty_addrs)

    def drain_dirty(self) -> List[Eviction]:
        """Evict every dirty line (used at end of simulation for accounting)."""
        evictions: List[Eviction] = []
        for cache_set in self._sets:
            for tag in list(cache_set):
                if cache_set[tag].dirty_mask:
                    cache_set.move_to_end(tag, last=False)
                    evictions.append(self._evict_lru(cache_set))
        return evictions

    # -- introspection ----------------------------------------------------------

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def miss_rate(self) -> float:
        accesses = self.stats.get("accesses")
        return self.stats.get("misses") / accesses if accesses else 0.0


class InfiniteCache:
    """An unbounded cache: only cold misses, never evicts (``large_mdc``)."""

    def __init__(
        self,
        stats: StatGroup | None = None,
        line_bytes: int = 128,
        tclass: TrafficClass | None = None,
        tracer=None,
        name: str = "cache",
        latency=None,
        hop: str | None = None,
        hit_latency: float = 0.0,
    ) -> None:
        self.stats = stats if stats is not None else StatGroup("cache")
        self.tclass = tclass
        self.name = name
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._cls_label = tclass.name if tclass is not None else "META"
        self._lat = latency if latency is not None else NULL_LATENCY
        self._hop = hop
        self._hit_latency = hit_latency
        self._lat_on = self._lat.enabled and hop is not None
        self._resident: Set[int] = set()
        self._dirty: Set[int] = set()
        self._line_bytes = line_bytes
        self._stat_add = self.stats.add
        self._trace_on = self._trace.enabled
        self._trace_instant = self._trace.instant

    def line_addr(self, addr: int) -> int:
        return addr - addr % self._line_bytes

    def lookup(self, addr: int, is_write: bool = False) -> AccessResult:
        line = self.line_addr(addr)
        self._stat_add("accesses")
        if line in self._resident:
            if is_write:
                self._dirty.add(line)
            self._stat_add("hits")
            if self._lat_on:
                self._lat.record(self._hop, self._cls_label, 0.0, self._hit_latency)
            if self._trace_on:
                self._trace_instant(
                    "hit", "cache", self.name, {"addr": addr, "cls": self._cls_label}
                )
            return AccessResult.HIT
        self._stat_add("misses")
        if self._trace_on:
            self._trace_instant(
                "miss", "cache", self.name, {"addr": addr, "cls": self._cls_label}
            )
        return AccessResult.MISS

    def contains(self, addr: int) -> bool:
        return self.line_addr(addr) in self._resident

    def fill(self, addr: int, dirty: bool = False) -> List[Eviction]:
        line = self.line_addr(addr)
        self._resident.add(line)
        if dirty:
            self._dirty.add(line)
        self.stats.add("fills")
        return []

    def write_insert(self, addr: int) -> List[Eviction]:
        return self.fill(addr, dirty=True)

    def mark_dirty(self, addr: int) -> bool:
        line = self.line_addr(addr)
        if line in self._resident:
            self._dirty.add(line)
            return True
        return False

    def drain_dirty(self) -> List[Eviction]:
        return []

    def resident_lines(self) -> int:
        return len(self._resident)

    def miss_rate(self) -> float:
        accesses = self.stats.get("accesses")
        return self.stats.get("misses") / accesses if accesses else 0.0
