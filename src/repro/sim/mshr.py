"""Miss-status holding registers with request merging.

The paper's Section V-B shows that GPU sectored caches turn streaming access
into bursts of *secondary misses* on the same metadata line, making MSHRs
essential.  This model supports three regimes:

* ``num_entries == 0`` — no MSHRs at all (the ``secureMem`` model of
  Section V-A): every miss, primary or secondary, issues its own memory
  fetch;
* merging up to ``merge_cap`` requests per entry (Section V-B's 512/64/64
  caps for counter/MAC/BMT caches);
* a full table, where new primary misses wait for the earliest in-flight
  fill to free an entry.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple

from repro.sim import fastpath
from repro.telemetry.latency import HOP_MSHR, NULL_LATENCY
from repro.telemetry.tracer import NULL_TRACER


#: surface the columnar delivery lane (:mod:`repro.sim.columnar`) binds at
#: lane construction and mirrors inline (allocate/merge/recycle for the
#: L2 MSHR, secondary-merge peeks for the metadata MSHRs).  Renaming or
#: re-typing anything listed here requires a matching lane update; the
#: contract test in ``tests/test_fastpath_identity.py`` fails the rename
#: at test time instead of deep inside a simulation.
COLUMNAR_CONTRACT = (
    "merge_cap",
    "_entries",
    "_pool",
    "_ready_heap",
    "recycle",
    "earliest_ready",
)


class MshrEntry:
    """One in-flight line fill."""

    __slots__ = ("line_addr", "ready_time", "merged", "waiters")

    def __init__(self, line_addr: int, ready_time: float) -> None:
        self.line_addr = line_addr
        self.ready_time = ready_time
        #: requests merged into this entry beyond the primary miss.
        self.merged = 0
        #: opaque objects to notify when the fill completes (used by the L2).
        self.waiters: List[Any] = []


class MshrTable:
    """MSHR file for one cache."""

    def __init__(
        self,
        num_entries: int,
        merge_cap: int,
        tracer=None,
        name: str = "mshr",
        latency=None,
        cls: str = "DATA",
    ) -> None:
        if num_entries < 0 or merge_cap < 0:
            raise ValueError("MSHR parameters must be non-negative")
        self.num_entries = num_entries
        self.merge_cap = merge_cap
        self.name = name
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._lat = latency if latency is not None else NULL_LATENCY
        self._lat_on = self._lat.enabled
        self._cls = cls
        #: plain attribute, not a property: ``enabled``/``full`` are probed
        #: on every cache miss, and a descriptor call there is measurable.
        self.enabled = num_entries > 0
        self._entries: Dict[int, MshrEntry] = {}
        #: free-list of released entries (slot reuse for the per-miss
        #: allocation churn); callers hand entries back via :meth:`recycle`
        #: once they are done reading the waiter list.
        self._pool: List[MshrEntry] = []
        #: lazy min-heap of (ready_time, line_addr) mirroring allocations,
        #: so :meth:`earliest_ready` is O(log n) instead of a full scan of
        #: the table on every structural stall.  Stale items (released or
        #: re-allocated lines) are skipped at read time.
        self._ready_heap: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return self.enabled and len(self._entries) >= self.num_entries

    @property
    def occupancy(self) -> int:
        """In-flight entries right now (the sampler's MSHR gauge)."""
        return len(self._entries)

    def get(self, line_addr: int) -> MshrEntry | None:
        """The in-flight entry for *line_addr*, if any."""
        return self._entries.get(line_addr)

    def can_merge(self, entry: MshrEntry) -> bool:
        return self.enabled and entry.merged < self.merge_cap

    def merge(self, entry: MshrEntry, waiter: Any = None, now: float | None = None) -> float:
        """Attach a secondary miss to *entry*; returns the fill ready time.

        With *now* given (and latency telemetry bound), the cycles the
        merged request will wait under the in-flight fill are recorded as
        MSHR-hop queueing.
        """
        if not self.can_merge(entry):
            raise RuntimeError("merge cap exceeded; caller must check can_merge")
        entry.merged += 1
        if waiter is not None:
            entry.waiters.append(waiter)
        if self._lat_on and now is not None:
            self._lat.record(HOP_MSHR, self._cls, entry.ready_time - now, 0.0)
        if self._trace.enabled:
            self._trace.instant(
                "merge", "mshr", self.name, {"addr": entry.line_addr, "n": entry.merged}
            )
        return entry.ready_time

    def allocate(self, line_addr: int, ready_time: float, waiter: Any = None) -> MshrEntry:
        """Track a new primary miss.  Caller must ensure the table isn't full."""
        if not self.enabled:
            raise RuntimeError("MSHRs are disabled")
        if self.full:
            raise RuntimeError("MSHR table full; caller must check .full")
        if line_addr in self._entries:
            raise RuntimeError(f"line {line_addr:#x} already has an MSHR entry")
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry.line_addr = line_addr
            entry.ready_time = ready_time
            entry.merged = 0
        else:
            entry = MshrEntry(line_addr, ready_time)
        if waiter is not None:
            entry.waiters.append(waiter)
        self._entries[line_addr] = entry
        heapq.heappush(self._ready_heap, (ready_time, line_addr))
        return entry

    def release(self, line_addr: int) -> MshrEntry:
        """Remove and return the entry when its fill completes."""
        return self._entries.pop(line_addr)

    def recycle(self, entry: MshrEntry) -> None:
        """Return a released entry to the free-list (caller is done with it)."""
        if fastpath.POOLING:
            entry.waiters.clear()
            self._pool.append(entry)

    def earliest_ready(self) -> float:
        """Ready time of the first fill that will free an entry."""
        entries = self._entries
        if not entries:
            return 0.0
        heap = self._ready_heap
        while heap:
            ready_time, line_addr = heap[0]
            entry = entries.get(line_addr)
            if entry is not None and entry.ready_time == ready_time:
                return ready_time
            heapq.heappop(heap)  # stale: released or re-allocated since
        # unreachable while the heap mirrors allocations; kept as a safety
        # net so a future bulk-clear cannot silently corrupt timing.
        return min(entry.ready_time for entry in entries.values())
