"""SM-to-partition interconnect.

A crossbar with a fixed traversal latency in each direction.  Address
interleaving across partitions happens here: consecutive
``partition_interleave_bytes`` chunks map to consecutive partitions, the
standard GPU scheme that spreads streaming traffic evenly.
"""

from __future__ import annotations

from typing import Callable, List

from repro.common.config import GpuConfig
from repro.common.stats import StatGroup
from repro.sim import columnar
from repro.sim.event import EventQueue
from repro.sim.partition import MemoryPartition
from repro.telemetry.latency import HOP_ICNT, NULL_LATENCY


class Crossbar:
    """Routes sector requests from SMs to memory partitions and back."""

    def __init__(
        self,
        config: GpuConfig,
        events: EventQueue,
        partitions: List[MemoryPartition],
        stats: StatGroup,
        latency=None,
    ) -> None:
        self.config = config
        self.events = events
        self.partitions = partitions
        self.stats = stats
        self.latency = config.interconnect_latency
        self._interleave = config.partition_interleave_bytes
        self._num_partitions = config.num_partitions
        # precomputed interleave shift/partition mask (powers of two in all
        # shipped configurations; the div/mod path covers the rest).
        interleave, num = self._interleave, self._num_partitions
        if (
            interleave > 0
            and interleave & (interleave - 1) == 0
            and num > 0
            and num & (num - 1) == 0
        ):
            self._interleave_shift = interleave.bit_length() - 1
            self._partition_mask = num - 1
        else:
            self._interleave_shift = None
            self._partition_mask = 0
        self._stat_add = stats.add
        self._counts = stats.raw()
        self._lat = latency if latency is not None else NULL_LATENCY
        self._lat_on = self._lat.enabled
        #: columnar delivery lane (None when the switches or the model
        #: configuration rule it out); grouped deliveries classified as
        #: regular bypass the per-access closure machinery through it.
        self._lane = columnar.build_lane(config, events, partitions, self.latency)

    def partition_of(self, addr: int) -> int:
        shift = self._interleave_shift
        if shift is not None:
            return (addr >> shift) & self._partition_mask
        return (addr // self._interleave) % self._num_partitions

    def send(
        self,
        now: float,
        addr: int,
        is_write: bool,
        respond: Callable[[float], None],
    ) -> None:
        """Forward a request; *respond* fires back at the SM side."""
        self._counts["requests"] += 1.0
        partition = self.partitions[self.partition_of(addr)]
        if self._lat_on:
            # fixed traversal cost, both directions, paid by every request.
            self._lat.record(HOP_ICNT, "DATA", 0.0, 2.0 * self.latency)

        def reply(done: float) -> None:
            arrive = done + self.latency
            self.events.schedule_at(arrive, respond, arrive)

        self.events.schedule(self.latency, self._deliver, partition, addr, is_write, reply)

    def _deliver(self, partition: MemoryPartition, addr: int, is_write: bool, reply) -> None:
        partition.access(self.events.now, addr, is_write, reply)

    def send_batch(self, now: float, items: list) -> None:
        """Forward a group of same-cycle requests as one scheduled event.

        *items* is a list of ``(addr, is_write, respond)`` tuples (borrowed
        from the event queue's list pool).  In the scalar core these were
        consecutive ``send`` calls: k deliver events with identical
        timestamps and consecutive sequence numbers, so nothing could fire
        between them — executing the deliveries back to back under one
        event is order-identical, and every downstream event keeps its
        relative scheduling order.
        """
        self._counts["requests"] += float(len(items))
        if self._lat_on:
            record = self._lat.record
            traversal = 2.0 * self.latency
            for _ in items:
                record(HOP_ICNT, "DATA", 0.0, traversal)
        self.events.schedule(self.latency, self._deliver_batch, items)

    def _deliver_batch(self, items: list) -> None:
        events = self.events
        now = events.now
        lane = self._lane
        if lane is not None and lane.deliver(now, items):
            events.extra_events += len(items) - 1
            events.recycle_list(items)
            return
        partitions = self.partitions
        latency = self.latency
        schedule_at = events.schedule_at
        shift = self._interleave_shift
        pmask = self._partition_mask
        for addr, is_write, respond in items:
            if shift is not None:
                partition = partitions[(addr >> shift) & pmask]
            else:
                partition = partitions[
                    (addr // self._interleave) % self._num_partitions
                ]

            def reply(done: float, _respond=respond) -> None:
                arrive = done + latency
                schedule_at(arrive, _respond, arrive)

            partition.access(now, addr, is_write, reply)
        events.extra_events += len(items) - 1
        events.recycle_list(items)
