"""SM-to-partition interconnect.

A crossbar with a fixed traversal latency in each direction.  Address
interleaving across partitions happens here: consecutive
``partition_interleave_bytes`` chunks map to consecutive partitions, the
standard GPU scheme that spreads streaming traffic evenly.
"""

from __future__ import annotations

from typing import Callable, List

from repro.common.config import GpuConfig
from repro.common.stats import StatGroup
from repro.sim.event import EventQueue
from repro.sim.partition import MemoryPartition


class Crossbar:
    """Routes sector requests from SMs to memory partitions and back."""

    def __init__(
        self,
        config: GpuConfig,
        events: EventQueue,
        partitions: List[MemoryPartition],
        stats: StatGroup,
    ) -> None:
        self.config = config
        self.events = events
        self.partitions = partitions
        self.stats = stats
        self.latency = config.interconnect_latency
        self._interleave = config.partition_interleave_bytes
        self._num_partitions = config.num_partitions

    def partition_of(self, addr: int) -> int:
        return (addr // self._interleave) % self._num_partitions

    def send(
        self,
        now: float,
        addr: int,
        is_write: bool,
        respond: Callable[[float], None],
    ) -> None:
        """Forward a request; *respond* fires back at the SM side."""
        self.stats.add("requests")
        partition = self.partitions[self.partition_of(addr)]

        def reply(done: float) -> None:
            arrive = done + self.latency
            self.events.schedule_at(arrive, respond, arrive)

        self.events.schedule(self.latency, self._deliver, partition, addr, is_write, reply)

    def _deliver(self, partition: MemoryPartition, addr: int, is_write: bool, reply) -> None:
        partition.access(self.events.now, addr, is_write, reply)
