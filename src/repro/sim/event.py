"""A minimal discrete-event scheduler.

Events are ``(time, seq, callback, args)`` tuples in a binary heap.  The
sequence number makes ordering deterministic for simultaneous events and
keeps the heap from ever comparing callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple


class EventQueue:
    """Simulation clock plus pending-event heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, Callable[..., None], Tuple[Any, ...]]] = []
        self._stopped = False

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute *time* (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, callback, args))

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` *delay* cycles from now."""
        self.schedule_at(self.now + delay, callback, *args)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event."""
        self._stopped = True

    def empty(self) -> bool:
        return not self._heap

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in time order.

        Stops when the heap empties, the clock passes *until*, *max_events*
        have been processed, or :meth:`stop` is called.  Returns the number
        of events processed.
        """
        self._stopped = False
        processed = 0
        heap = self._heap
        while heap and not self._stopped:
            time, _seq, callback, args = heap[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(heap)
            self.now = time
            callback(*args)
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        else:
            if until is not None and not self._stopped:
                self.now = max(self.now, until)
        return processed
