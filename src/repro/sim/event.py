"""A minimal discrete-event scheduler.

Events are ``(time, seq, callback, args)`` tuples in a binary heap.  The
sequence number makes ordering deterministic for simultaneous events and
keeps the heap from ever comparing callbacks.

:meth:`EventQueue.run` is the simulator's hottest loop — a single
experiment point processes millions of events — so it binds the heap
primitives locally and splits an unbounded fast path from the
horizon-bounded one to keep per-event overhead at a few bytecodes.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop


class EventQueue:
    """Simulation clock plus pending-event heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, Callable[..., None], Tuple[Any, ...]]] = []
        self._stopped = False

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute *time* (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        self._seq += 1
        _heappush(self._heap, (time, self._seq, callback, args))

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` *delay* cycles from now."""
        self.schedule_at(self.now + delay, callback, *args)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event."""
        self._stopped = True

    def empty(self) -> bool:
        return not self._heap

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in time order.

        Stops when the heap empties, the clock passes *until*, *max_events*
        have been processed, or :meth:`stop` is called.  Returns the number
        of events processed.
        """
        self._stopped = False
        processed = 0
        heap = self._heap
        pop = _heappop

        if until is None:
            # unbounded fast path: no horizon peek per event.
            while heap and not self._stopped:
                event_time, _seq, callback, args = pop(heap)
                self.now = event_time
                callback(*args)
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            return processed

        while heap and not self._stopped:
            event_time = heap[0][0]
            if event_time > until:
                self.now = until
                return processed
            _time, _seq, callback, args = pop(heap)
            self.now = event_time
            callback(*args)
            processed += 1
            if max_events is not None and processed >= max_events:
                return processed
        if not self._stopped and self.now < until:
            self.now = until
        return processed
