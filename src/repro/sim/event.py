"""A minimal discrete-event scheduler built on an integer-cycle calendar.

Events are ``(time, seq, callback, args)`` tuples.  The sequence number
makes ordering deterministic for simultaneous events and keeps the
scheduler from ever comparing callbacks.

Integer-cycle convention
------------------------
Every *configured* latency in the simulator (cache hit latencies, DRAM
access latency, interconnect traversal, crypto latencies) is a whole
number of core cycles; sub-cycle fractions arise only from throughput
occupancies (bytes over bandwidth, instructions over issue width).  The
scheduler exploits this: pending events are binned into a **calendar
queue** of per-cycle buckets indexed by ``int(time)``, with a binary-heap
fallback for events beyond the calendar window (far-future events such as
counter-overflow sweeps or deep back-pressure stalls).  Timestamps keep
their exact sub-cycle value, so results are bit-identical to the previous
global-heap scheduler — only the data structure changed.

Ordering contract: events fire in ``(time, seq)`` order.  Within one
integer cycle a per-bucket heap orders entries exactly as the old global
heap did; across the calendar/heap boundary, far events migrate into
their bucket before the cycle is reached, so same-``(time, seq)`` order
is preserved end to end (FIFO for equal timestamps).

:meth:`EventQueue.run` is the simulator's hottest loop — a single
experiment point processes millions of events — so it binds the heap
primitives locally and splits an unbounded fast path from the
horizon-bounded one to keep per-event overhead at a few bytecodes.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop

#: one pending event: (absolute time, sequence number, callback, args).
Entry = Tuple[float, int, Callable[..., None], Tuple[Any, ...]]


class SchedulingError(ValueError):
    """An event was scheduled in the past.

    Carries the offending callback's name so the failing component is
    identifiable from the message alone (the scheduler sees only opaque
    callables).  Subclasses :class:`ValueError` for backwards
    compatibility with callers that catch the old bare error.
    """


class EventQueue:
    """Simulation clock plus a calendar queue of pending events.

    The calendar holds the next :data:`CALENDAR_WINDOW` whole cycles as
    per-cycle buckets (small heaps); anything further out waits in one
    overflow heap and migrates into its bucket as the window slides.
    """

    #: calendar span in whole cycles; must be a power of two.  Covers every
    #: configured latency in the model (the largest, back-pressure stalls,
    #: is bounded by the 2048-cycle backlog window plus DRAM latency).
    CALENDAR_WINDOW = 4096

    def __init__(self) -> None:
        self.now: float = 0.0
        self._seq = 0
        window = self.CALENDAR_WINDOW
        self._mask = window - 1
        self._buckets: List[List[Entry]] = [[] for _ in range(window)]
        #: integer cycle the calendar is anchored at.  Invariant outside
        #: :meth:`run`: ``_cycle == int(now)``, and every bucket-resident
        #: event has ``int(time)`` in ``[_cycle, _cycle + CALENDAR_WINDOW)``.
        self._cycle = 0
        self._near = 0
        self._far: List[Entry] = []
        #: lazy min-heap of occupied calendar cycles: a cycle is pushed when
        #: its bucket goes empty -> non-empty, and popped when observed empty
        #: (stale).  Lets :meth:`_advance` jump straight to the next occupied
        #: cycle instead of scanning idle windows one cycle at a time.
        self._occupied: List[int] = []
        self._stopped = False
        #: logical events folded into batch callbacks (grouped crossbar
        #: delivery executes N per-access deliveries under one scheduled
        #: event; the extra N-1 are counted here so events/sec stays
        #: comparable across the batched and scalar cores).
        self.extra_events = 0
        #: free-list of payload lists for batch events (slot reuse).
        self._list_pool: List[list] = []

    def borrow_list(self) -> list:
        """An empty list from the pool (return it via :meth:`recycle_list`)."""
        pool = self._list_pool
        return pool.pop() if pool else []

    def recycle_list(self, used: list) -> None:
        """Return a borrowed payload list once its batch event has fired."""
        used.clear()
        self._list_pool.append(used)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute *time* (>= now)."""
        if time < self.now:
            name = getattr(callback, "__qualname__", None) or repr(callback)
            raise SchedulingError(
                f"cannot schedule {name} at {time} before now={self.now}"
            )
        self._seq += 1
        cycle = int(time)
        if cycle - self._cycle < 4096:  # CALENDAR_WINDOW, inlined for speed
            bucket = self._buckets[cycle & self._mask]
            if not bucket:
                _heappush(self._occupied, cycle)
            _heappush(bucket, (time, self._seq, callback, args))
            self._near += 1
        else:
            _heappush(self._far, (time, self._seq, callback, args))

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` *delay* cycles from now."""
        self.schedule_at(self.now + delay, callback, *args)

    def stop(self) -> None:
        """Make :meth:`run` return after the current event."""
        self._stopped = True

    def clear(self) -> None:
        """Drop every pending event (clock and calendar anchor are kept).

        Used after a finished simulation: pending entries hold bound
        methods of the components that hold this queue, i.e. the reference
        cycles that keep a dropped model alive until a collector pass.
        """
        for bucket in self._buckets:
            bucket.clear()
        self._far.clear()
        self._occupied.clear()
        self._near = 0

    def empty(self) -> bool:
        return not (self._near or self._far)

    def __len__(self) -> int:
        return self._near + len(self._far)

    def _advance(self, limit: Optional[int]) -> bool:
        """Move :attr:`_cycle` to the next cycle holding an event.

        The next occupied cycle comes from the lazy occupied-cycle heap
        (idle windows are skipped in one jump instead of scanned cycle by
        cycle); far-future events migrate into their calendar bucket as the
        window slides over them, so bucket order subsumes the heap fallback.
        With *limit* set the calendar never moves past it (events beyond the
        horizon stay put for the next :meth:`run`).  Returns True when a
        non-empty bucket was found at the new ``_cycle``.
        """
        buckets = self._buckets
        mask = self._mask
        window = self.CALENDAR_WINDOW
        far = self._far
        occupied = self._occupied
        current = self._cycle
        # lazy-deletion bound: stale entries (drained or reused cycles that
        # never reached the heap front) may outnumber the live ones after
        # bursty schedule/drain patterns.  Live cycles are at most _near
        # (each non-empty bucket holds >= 1 event), so once the heap grows
        # past twice that, rebuild it from the actually-occupied cycles —
        # a sorted list is a valid heap, and the set-comprehension also
        # drops duplicate entries from empty->non-empty->empty->non-empty
        # transitions of one cycle.
        if len(occupied) > 64 and len(occupied) > (self._near << 1):
            live = {c for c in occupied if c >= current and buckets[c & mask]}
            occupied[:] = sorted(live)
        while True:
            # drop stale occupied-cycle entries: the bucket emptied since the
            # push, or the cycle was drained and its bucket slot has since
            # been reused by a cycle one window later (same index mod window).
            while occupied and (
                occupied[0] < current or not buckets[occupied[0] & mask]
            ):
                _heappop(occupied)
            if occupied:
                c = occupied[0]
                if far and far[0][0] < c:
                    c = int(far[0][0])
            elif far:
                c = int(far[0][0])
            else:
                if limit is not None and limit > self._cycle:
                    self._cycle = limit
                return False
            if limit is not None and c > limit:
                self._cycle = limit
                return False
            horizon = c + window
            while far and far[0][0] < horizon:
                entry = _heappop(far)
                cycle = int(entry[0])
                bucket = buckets[cycle & mask]
                if not bucket:
                    _heappush(occupied, cycle)
                _heappush(bucket, entry)
                self._near += 1
            if buckets[c & mask]:
                self._cycle = c
                return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in time order.

        Stops when the queue empties, the clock passes *until*,
        *max_events* have been processed, or :meth:`stop` is called.
        Returns the number of events processed.
        """
        self._stopped = False
        processed = 0
        buckets = self._buckets
        mask = self._mask
        pop = _heappop

        if until is None:
            # unbounded fast path: no horizon peek per event.
            while True:
                bucket = buckets[self._cycle & mask]
                while bucket:
                    event_time, _seq, callback, args = pop(bucket)
                    self._near -= 1
                    self.now = event_time
                    callback(*args)
                    processed += 1
                    if self._stopped:
                        return processed
                    if max_events is not None and processed >= max_events:
                        return processed
                if not self._advance(None):
                    return processed

        limit = int(until)
        if limit < self._cycle:
            limit = self._cycle
        if max_events is None:
            # horizon-bounded hot path (the simulator's run calls land
            # here): pop eagerly and push the entry back on the rare
            # horizon overshoot — cheaper than peeking every event.
            push = _heappush
            while True:
                bucket = buckets[self._cycle & mask]
                while bucket:
                    entry = pop(bucket)
                    event_time = entry[0]
                    if event_time > until:
                        push(bucket, entry)
                        self.now = until
                        return processed
                    self._near -= 1
                    self.now = event_time
                    entry[2](*entry[3])
                    processed += 1
                    if self._stopped:
                        return processed
                if not self._advance(limit):
                    if not self._stopped and self.now < until:
                        self.now = until
                    return processed
        while True:
            bucket = buckets[self._cycle & mask]
            while bucket:
                event_time = bucket[0][0]
                if event_time > until:
                    self.now = until
                    return processed
                _time, _seq, callback, args = pop(bucket)
                self._near -= 1
                self.now = event_time
                callback(*args)
                processed += 1
                if self._stopped:
                    return processed
                if max_events is not None and processed >= max_events:
                    return processed
            if not self._advance(limit):
                if not self._stopped and self.now < until:
                    self.now = until
                return processed
