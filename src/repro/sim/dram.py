"""Per-partition DRAM channel model.

Each memory partition owns one GDDR channel with a fixed access latency and
a finite bandwidth.  Bandwidth is modeled as channel occupancy: a transfer
of N bytes holds the channel for ``N / bytes_per_cycle`` core cycles, so
extra metadata traffic directly delays later data accesses — the contention
mechanism at the heart of the paper.

Every transfer is accounted in 32 B transactions under a *category* label
(``data_read``, ``data_write``, ``ctr``, ``mac``, ``bmt``, ``wb``) so
Figure 4's traffic breakdown falls straight out of the stats.
"""

from __future__ import annotations

from repro.common import params
from repro.common.config import DramConfig
from repro.common.stats import StatGroup
from repro.sim.resource import ThroughputResource
from repro.telemetry.latency import HOP_DRAM, NULL_LATENCY, STALL_DRAM_QUEUE
from repro.telemetry.tracer import NULL_TRACER
from repro.telemetry.traffic import CLASS_OF_CATEGORY, TrafficClass

#: category labels used throughout the simulator.
CAT_DATA_READ = "data_read"
CAT_DATA_WRITE = "data_write"
CAT_COUNTER = "ctr"
CAT_MAC = "mac"
CAT_TREE = "bmt"
CAT_METADATA_WB = "wb"

ALL_CATEGORIES = (
    CAT_DATA_READ,
    CAT_DATA_WRITE,
    CAT_COUNTER,
    CAT_MAC,
    CAT_TREE,
    CAT_METADATA_WB,
)


#: surface the columnar delivery lane (:mod:`repro.sim.columnar`) binds at
#: lane construction: the FCFS channel state it reserves inline for data
#: fetches/write-backs and the memoized per-size occupancy it reuses so
#: timing floats stay the exact division results the scalar path computes.
#: Renames here require a matching lane update; the contract test in
#: ``tests/test_fastpath_identity.py`` pins the names.
COLUMNAR_CONTRACT = (
    "channel",
    "access_latency",
    "_counts",
    "_occupancy",
)


class DramChannel:
    """One partition's memory channel."""

    def __init__(
        self,
        config: DramConfig,
        core_clock_mhz: float,
        stats: StatGroup | None = None,
        tracer=None,
        name: str = "dram",
        latency=None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else StatGroup("dram")
        self.name = name
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._lat = latency if latency is not None else NULL_LATENCY
        #: achievable service rate: peak scaled by DRAM efficiency.
        self.bytes_per_cycle = config.bytes_per_core_cycle(core_clock_mhz) * config.efficiency
        #: peak rate, the denominator of the utilization metric.
        self.peak_bytes_per_cycle = config.bytes_per_core_cycle(core_clock_mhz)
        if self.bytes_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")
        self.channel = ThroughputResource("dram-channel")
        self.access_latency = config.access_latency
        # hot-path bindings: every transfer is accounted under precomputed
        # stat keys (no per-access f-string), and channel occupancies are
        # memoized per transfer size — the division result is cached, never
        # recomputed differently, so timing stays bit-identical.
        self._stat_add = self.stats.add
        self._counts = self.stats.raw()
        self._stat_keys = {cat: (f"txn_{cat}", f"bytes_{cat}") for cat in ALL_CATEGORIES}
        self._occupancy_memo: dict[int, float] = {}
        #: (category, tclass) -> label string; enum ``.name`` is a descriptor
        #: lookup, too slow to repeat on every traced transfer.
        self._label_memo: dict = {}
        #: (category, tclass) -> (queue buffer, service buffer, label).
        self._lat_chan_memo: dict = {}
        self._trace_on = self._trace.enabled
        self._trace_span = self._trace.span
        self._lat_on = self._lat.enabled

    def _record_latency(
        self, category: str, tclass, queue: float, service: float, nbytes: int
    ) -> None:
        """One per-transfer latency-telemetry emission (guarded by _lat_on).

        Bytes are accounted here — at the channel — so the per-class totals
        in the latency export conserve exactly against the DRAM byte stats.
        The recorder's per-class sample buffers are memoized per
        (category, tclass) so the hot path is two appends.
        """
        key = (category, tclass)
        bound = self._lat_chan_memo.get(key)
        if bound is None:
            label = self._class_label(category, tclass)
            queues, services = self._lat.channel(HOP_DRAM, label)
            bound = self._lat_chan_memo[key] = (queues, services, label)
        bound[0].append(queue)
        bound[1].append(service)
        lat = self._lat
        if queue > 0.0:
            lat.stall(STALL_DRAM_QUEUE, queue)
        lat.account_bytes(bound[2], nbytes)

    def _occupancy(self, nbytes: int) -> float:
        memo = self._occupancy_memo
        occupancy = memo.get(nbytes)
        if occupancy is None:
            occupancy = memo[nbytes] = nbytes / self.bytes_per_cycle
        return occupancy

    def _account(self, category: str, nbytes: int) -> None:
        transactions = nbytes // params.SECTOR_BYTES or 1
        keys = self._stat_keys.get(category)
        if keys is None:
            keys = self._stat_keys[category] = (f"txn_{category}", f"bytes_{category}")
        counts = self._counts
        counts[keys[0]] += transactions
        counts[keys[1]] += nbytes
        counts["txn_total"] += transactions
        counts["bytes_total"] += nbytes

    def _class_label(self, category: str, tclass: TrafficClass | None) -> str:
        memo = self._label_memo
        label = memo.get((category, tclass))
        if label is None:
            if tclass is not None:
                label = tclass.name
            else:
                mapped = CLASS_OF_CATEGORY.get(category)
                label = mapped.name if mapped is not None else "META"
            memo[(category, tclass)] = label
        return label

    def read(
        self,
        now: float,
        nbytes: int,
        category: str,
        addr: int = 0,
        tclass: TrafficClass | None = None,
    ) -> float:
        """Issue a read; returns the time the data is available on chip.

        *addr* is unused by the simple model (fixed latency) but lets the
        banked model resolve the bank and row.  *tclass* attributes the
        transfer to a traffic class for tracing; when omitted it is derived
        from *category*.
        """
        occupancy = self._occupancy(nbytes)
        # FCFS acquire, inlined (the channel resource has no stats group).
        channel = self.channel
        next_free = channel.next_free
        start = next_free if next_free > now else now
        channel.next_free = start + occupancy
        channel.busy_cycles += occupancy
        self._account(category, nbytes)
        if self._lat_on:
            self._record_latency(
                category, tclass, start - now, occupancy + self.access_latency, nbytes
            )
        if self._trace_on:
            self._trace_span(
                category,
                "dram",
                self.name,
                start,
                occupancy + self.access_latency,
                {"bytes": nbytes, "cls": self._class_label(category, tclass), "addr": addr},
            )
        return start + occupancy + self.access_latency

    def write(
        self,
        now: float,
        nbytes: int,
        category: str,
        addr: int = 0,
        tclass: TrafficClass | None = None,
    ) -> float:
        """Issue a write; returns when the channel accepted it.

        The requester does not wait for the write to land in the array, but
        the channel occupancy delays every later access — a write queue
        drained at channel bandwidth.
        """
        occupancy = self._occupancy(nbytes)
        channel = self.channel
        next_free = channel.next_free
        start = next_free if next_free > now else now
        channel.next_free = start + occupancy
        channel.busy_cycles += occupancy
        self._account(category, nbytes)
        if self._lat_on:
            self._record_latency(category, tclass, start - now, occupancy, nbytes)
        if self._trace_on:
            self._trace_span(
                category,
                "dram",
                self.name,
                start,
                occupancy,
                {"bytes": nbytes, "cls": self._class_label(category, tclass), "addr": addr},
            )
        return start + occupancy

    def backlog(self, now: float) -> float:
        return self.channel.backlog(now)

    def utilization(self, elapsed: float) -> float:
        """Achieved bytes over peak bytes: busy fraction times efficiency."""
        return self.channel.utilization(elapsed) * self.config.efficiency

    def traffic_breakdown(self) -> dict[str, float]:
        """Transactions per category (the Figure 4 quantities)."""
        return {cat: self.stats.get(f"txn_{cat}") for cat in ALL_CATEGORIES}


class BankedDramChannel(DramChannel):
    """Row-buffer-aware channel: efficiency emerges from row conflicts.

    The channel's data bus runs at the raw peak rate; each of ``num_banks``
    banks holds one open row.  A request to the open row pays the short
    CAS-style latency; any other row pays activate+precharge and blocks its
    bank.  Streaming traffic keeps rows open (high efficiency); interleaved
    metadata/data streams and random traffic thrash the rows — exactly the
    effect the simple model folds into its constant ``efficiency``.
    """

    def __init__(
        self,
        config,
        core_clock_mhz: float,
        stats: StatGroup | None = None,
        tracer=None,
        name: str = "dram",
        latency=None,
    ) -> None:
        super().__init__(config, core_clock_mhz, stats, tracer=tracer, name=name, latency=latency)
        #: the bus runs at raw peak; conflicts provide the inefficiency.
        self.bytes_per_cycle = config.bytes_per_core_cycle(core_clock_mhz)
        self._row_bytes = config.row_bytes
        self._row_hit = config.row_hit_latency
        self._row_miss = config.row_miss_latency
        #: per bank: [open_row, busy_until]
        self._banks = [[-1, 0.0] for _ in range(config.num_banks)]

    def _bank_service(self, now: float, nbytes: int, addr: int) -> tuple[float, float, float]:
        """Returns (service_begin, transfer_done, data_ready) honoring bank state."""
        occupancy = self._occupancy(nbytes)
        start = self.channel.acquire(now, occupancy)
        row = addr // self._row_bytes
        bank = self._banks[row % len(self._banks)]
        hit = bank[0] == row
        self.stats.add("row_hits" if hit else "row_misses")
        latency = self._row_hit if hit else self._row_miss
        begin = max(start, bank[1])
        done = begin + occupancy
        bank[0] = row
        bank[1] = done if hit else done + (self._row_miss - self._row_hit) * 0.25
        return begin, done, done + latency

    def read(
        self,
        now: float,
        nbytes: int,
        category: str,
        addr: int = 0,
        tclass: TrafficClass | None = None,
    ) -> float:
        self._account(category, nbytes)
        begin, _done, ready = self._bank_service(now, nbytes, addr)
        if self._lat_on:
            self._record_latency(category, tclass, begin - now, ready - begin, nbytes)
        if self._trace_on:
            self._trace_span(
                category,
                "dram",
                self.name,
                now,
                ready - now,
                {"bytes": nbytes, "cls": self._class_label(category, tclass), "addr": addr},
            )
        return ready

    def write(
        self,
        now: float,
        nbytes: int,
        category: str,
        addr: int = 0,
        tclass: TrafficClass | None = None,
    ) -> float:
        self._account(category, nbytes)
        begin, done, _ready = self._bank_service(now, nbytes, addr)
        if self._lat_on:
            self._record_latency(category, tclass, begin - now, done - begin, nbytes)
        if self._trace_on:
            self._trace_span(
                category,
                "dram",
                self.name,
                now,
                done - now,
                {"bytes": nbytes, "cls": self._class_label(category, tclass), "addr": addr},
            )
        return done

    def utilization(self, elapsed: float) -> float:
        """Achieved over peak; the bus already runs at raw peak."""
        return self.channel.utilization(elapsed)

    def row_hit_rate(self) -> float:
        hits = self.stats.get("row_hits")
        total = hits + self.stats.get("row_misses")
        return hits / total if total else 0.0


def make_dram_channel(
    config: DramConfig,
    core_clock_mhz: float,
    stats: StatGroup | None = None,
    tracer=None,
    name: str = "dram",
    latency=None,
) -> DramChannel:
    """Instantiate the configured channel model."""
    if config.model == "banked":
        return BankedDramChannel(
            config, core_clock_mhz, stats, tracer=tracer, name=name, latency=latency
        )
    return DramChannel(config, core_clock_mhz, stats, tracer=tracer, name=name, latency=latency)
