"""Runtime switches for the batched/pooled simulation core.

The batched core (grouped crossbar delivery, epoch-pregenerated warp
traces) and the object pools (MSHR entries, in-flight metadata records)
are *pure mechanical* optimizations: they must produce bit-identical
results to the scalar, allocation-per-event path.  These switches exist
so that claim stays testable — the golden-identity tests run every case
both ways — and so environments without numpy degrade gracefully.

The switches deliberately live OUTSIDE :class:`repro.common.config.GpuConfig`:
they can never change a simulated statistic, so they must not perturb
config digests used as cache keys (a batched and a scalar run of the same
config share one cache entry).

Environment overrides (checked once at import):

* ``REPRO_NO_BATCH=1``    — disable batched delivery + epoch trace generation;
* ``REPRO_NO_POOL=1``     — disable object pooling/slot reuse.
* ``REPRO_NO_COLUMNAR=1`` — disable the columnar delivery lane (fused
  partition/metadata/DRAM timing for regular delivery groups).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

try:  # numpy accelerates epoch trace generation; everything else is pure.
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised in numpy-less environments
    HAVE_NUMPY = False

#: grouped crossbar delivery and epoch-batched trace pregeneration.
BATCHING = not os.environ.get("REPRO_NO_BATCH")
#: MshrEntry/_Inflight free-lists and per-warp callback reuse.
POOLING = not os.environ.get("REPRO_NO_POOL")
#: columnar delivery lane: regular delivery groups bypass the per-access
#: event/closure machinery and run as one fused pass (requires BATCHING,
#: since only grouped deliveries carry whole regular epochs).
COLUMNAR = not os.environ.get("REPRO_NO_COLUMNAR")


def configure(
    batching: bool | None = None,
    pooling: bool | None = None,
    columnar: bool | None = None,
) -> None:
    """Flip the fast-path switches (affects GPUs built afterwards)."""
    global BATCHING, POOLING, COLUMNAR
    if batching is not None:
        BATCHING = bool(batching)
    if pooling is not None:
        POOLING = bool(pooling)
    if columnar is not None:
        COLUMNAR = bool(columnar)


@contextmanager
def scoped(
    batching: bool | None = None,
    pooling: bool | None = None,
    columnar: bool | None = None,
):
    """Temporarily override the switches (the identity tests use this)."""
    global BATCHING, POOLING, COLUMNAR
    saved = (BATCHING, POOLING, COLUMNAR)
    configure(batching, pooling, columnar)
    try:
        yield
    finally:
        BATCHING, POOLING, COLUMNAR = saved


def switch_state() -> dict:
    """The active switch states plus the numpy soft-dependency flag.

    Recorded in benchmark metadata (``BENCH_core.json`` host info) so a
    regression check can refuse to compare runs taken under different
    fast-path configurations.
    """
    return {
        "batching": BATCHING,
        "pooling": POOLING,
        "columnar": COLUMNAR,
        "numpy": HAVE_NUMPY,
    }


def warm_state() -> dict:
    """Summary of the process-wide cross-point warm state.

    Reports the shared secure-geometry memos the batched core keeps warm
    across the simulation points one worker executes: layout instances and
    their address-translation LRUs, tree-parent maps, and the shared cache
    index-geometry table.  Purely observational — reading it never touches
    simulated state.  In a process pool each worker accumulates its own.
    """
    # deferred imports: these modules import fastpath at module scope.
    from repro.secure import layout as layout_mod
    from repro.secure import merkle
    from repro.secure.engine import _PARENT_MEMOS
    from repro.sim.cache import _index_geometry

    layouts = layout_mod.shared_layout.cache_info()
    translations = 0
    for shared in layout_mod.shared_layouts():
        for memo in (
            shared.counter_block_addr,
            shared.mac_block_addr,
            shared.bmt_path_addrs,
            shared.mt_path_addrs,
        ):
            translations += memo.cache_info().currsize
    return {
        "layouts": layouts.currsize,
        "layout_reuses": layouts.hits,
        "address_translations": translations,
        "tree_parent_entries": sum(len(m) for m in _PARENT_MEMOS.values()),
        "tree_geometries": (
            merkle.bmt_geometry.cache_info().currsize
            + merkle.mt_geometry.cache_info().currsize
        ),
        "cache_index_geometries": _index_geometry.cache_info().currsize,
    }
