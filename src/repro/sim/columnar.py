"""Columnar delivery lane: fused timing for regular delivery groups.

The batched core (PR 6) already retires one warp memory op's sectors as a
single grouped crossbar delivery — k consecutive same-cycle accesses that
nothing can interleave with.  That group is the safe columnar unit: this
module classifies each delivery group as *regular* (every partition it
touches is in a supported configuration and no telemetry hook is live) and,
when it is, routes the whole group around the per-access closure/dispatch
machinery of ``partition.access`` → ``engine.read_sector`` →
``dram.read``:

* a column pass derives the partition index, partition-local address, L2
  tag and sector bit for every access up front — vectorized with numpy for
  wide coalesced groups, with a bit-identical pure-Python twin below the
  numpy threshold (and in numpy-less environments);
* a fused per-sector pass then applies every state transition *in the
  exact order the scalar path would* — L2 LRU/tag updates, MSHR
  allocate/merge, secure-metadata cache peek/merge, AES/MAC pipe FCFS
  reservations, DRAM channel prefix occupancy — inlining the hot common
  cases and delegating rare/complex cases (metadata primary misses, tree
  walks, counter overflows, MSHR-full stalls in unusual cache shapes) to
  the existing scalar methods *before* any state is touched.

Because stateful mutations happen in scalar order and every scheduled
event keeps its (time, seq) position, results are bit-identical to the
event-path core; the ``fastpath.COLUMNAR`` switch and the golden-identity
suite pin that claim.  Irregular groups — telemetry live, banked DRAM,
metadata trace hooks, exotic cache geometry — fall back to the scalar
``Crossbar._deliver_batch`` loop untouched.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Callable, List, Optional

from repro.common import params
from repro.common.config import MetadataKind
from repro.secure.engine import _PRIMARY, SecureEngine
from repro.sim import fastpath
from repro.sim.cache import SectoredCache, _Line
from repro.sim.dram import DramChannel
from repro.sim.mshr import MshrEntry
from repro.sim.partition import BACKLOG_WINDOW, MemoryPartition

if fastpath.HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised in numpy-less environments
    _np = None

#: below this group size the scalar column twin wins (numpy call overhead
#: exceeds the per-element savings for the 2–8 sector groups typical of
#: 32-thread coalesced ops); wide groups take the vectorized pass.
NUMPY_MIN_GROUP = 16


class _KindLane:
    """Flattened hot-path view of one metadata kind's cache/MSHR state."""

    __slots__ = (
        "state",
        "fast",
        "kcounts",
        "ccounts",
        "single_set",
        "sets",
        "num_sets",
        "line_shift",
        "inflight",
        "entries",
        "merge_cap",
    )

    def __init__(self, engine: SecureEngine, state) -> None:
        self.state = state
        self.kcounts = state.counts
        self.inflight = state.inflight
        self.merge_cap = state.merge_cap
        cache = state.cache
        mshr = state.mshr
        self.entries = mshr._entries if mshr is not None else None
        # the inline peek handles the dominant shape: a non-sectored
        # SectoredCache with power-of-two lines and an MSHR table.  Perfect
        # and infinite metadata caches (and any other shape) go through the
        # scalar _metadata_cache_access call unchanged.
        self.fast = (
            not engine._perfect
            and not engine._infinite
            and type(cache) is SectoredCache
            and not cache._sectored
            and cache._line_shift is not None
            and mshr is not None
        )
        if type(cache) is SectoredCache:
            self.ccounts = cache._counts
            self.single_set = cache._single_set
            self.sets = cache._sets
            self.num_sets = cache._num_sets
            self.line_shift = cache._line_shift
        else:
            self.ccounts = None
            self.single_set = None
            self.sets = None
            self.num_sets = 1
            self.line_shift = 0


class _PartitionLane:
    """Fused, order-preserving read/write path for one memory partition.

    Every arithmetic expression and counter update below mirrors the exact
    statement sequence of ``MemoryPartition.access``/``_handle_read``/
    ``_handle_write`` and ``SecureEngine.read_sector``/``write_sector``
    with telemetry off; any behavioral divergence is a bug caught by the
    fastpath-identity golden suite.
    """

    __slots__ = (
        "partition",
        "supported",
        "events",
        "schedule_at",
        "latency",
        "pcounts",
        "bank",
        "bank_occ",
        "hit_latency",
        "fetch_bytes",
        "fetch_inv",
        "channel",
        "l2_single",
        "l2_sets",
        "l2_nsets",
        "l2_counts",
        "l2_shift",
        "l2_sector_shift",
        "l2_spl_mask",
        "l2_sectored",
        "l2_assoc",
        "l2_full_mask",
        "l2_evict",
        "l2_entries",
        "l2_cap",
        "l2_enabled",
        "l2_merge_cap",
        "l2_mshr",
        "l2_pool",
        "l2_ready_heap",
        "engine",
        "eng_counts",
        "sec_enabled",
        "counter_mode",
        "direct_mode",
        "uses_macs",
        "uses_tree",
        "walk_mt",
        "speculative",
        "lazy",
        "all_protected",
        "protected_window",
        "ctr_block_addr",
        "mac_block_addr",
        "bmt_path_addrs",
        "mt_path_addrs",
        "ctr_memo",
        "mac_memo",
        "eng_plain",
        "eng_direct",
        "ctr_lane",
        "mac_lane",
        "meta_hit_latency",
        "aes_pipe",
        "aes_counts",
        "aes_occ",
        "aes_latency",
        "mac_pipe",
        "mac_counts",
        "mac_occ",
        "mac_nops",
        "mac_latency",
        "dram_counts",
        "dram_occ",
        "dram_latency",
        "dram_txn",
    )

    def __init__(self, partition: MemoryPartition, events, latency: float) -> None:
        self.partition = partition
        self.events = events
        self.schedule_at = events.schedule_at
        self.latency = latency
        engine = partition.engine
        l2 = partition.l2
        dram = partition.dram
        # lane preconditions, resolved once: simple (non-banked) DRAM model,
        # power-of-two L2 geometry, no metadata trace hook.  Telemetry
        # enablement is rechecked per delivery (it flips at the warmup
        # boundary); everything here is fixed for the GPU's lifetime.
        self.supported = (
            type(dram) is DramChannel
            and l2._line_shift is not None
            and (not l2._sectored or l2._spl_mask is not None)
            and engine.trace_hook is None
        )
        if not self.supported:
            return
        self.pcounts = partition.stats.raw()
        self.bank = partition._bank
        self.bank_occ = partition._bank_occupancy
        self.hit_latency = partition._hit_latency
        self.fetch_bytes = partition._fetch_bytes
        self.fetch_inv = ~(self.fetch_bytes - 1)
        self.channel = partition._dram_channel
        self.l2_single = l2._single_set
        self.l2_sets = l2._sets
        self.l2_nsets = l2._num_sets
        self.l2_counts = l2._counts
        self.l2_shift = l2._line_shift
        self.l2_sector_shift = l2._sector_shift
        self.l2_spl_mask = l2._spl_mask
        self.l2_sectored = l2._sectored
        self.l2_assoc = l2._assoc
        self.l2_full_mask = l2._full_mask
        self.l2_evict = l2._evict_lru
        self.l2_entries = partition._l2_mshr_entries
        self.l2_cap = partition._l2_mshr_cap
        self.l2_enabled = partition._l2_mshr_enabled
        self.l2_merge_cap = partition.l2_mshr.merge_cap
        self.l2_mshr = partition.l2_mshr
        self.l2_pool = partition.l2_mshr._pool
        self.l2_ready_heap = partition.l2_mshr._ready_heap
        self.engine = engine
        self.eng_counts = engine._counts
        self.sec_enabled = engine._enabled
        self.counter_mode = engine._counter_mode
        self.direct_mode = engine._direct_mode
        self.uses_macs = engine._uses_macs
        self.uses_tree = engine._uses_tree
        self.walk_mt = engine._walk_mt
        self.speculative = engine._speculative
        self.lazy = engine._lazy
        self.all_protected = engine._all_protected
        self.protected_window = engine._protected_window
        layout = engine.layout
        self.ctr_block_addr = layout.counter_block_addr
        self.mac_block_addr = layout.mac_block_addr
        self.bmt_path_addrs = layout.bmt_path_addrs
        self.mt_path_addrs = layout.mt_path_addrs
        #: plain dict memos over the layout's pure address translations —
        #: cheaper to probe than the shared lru_cache wrappers on the hot
        #: per-access path (values are identical by purity).
        self.ctr_memo = {}
        self.mac_memo = {}
        #: True when a read is *always* just the data fetch: security off,
        #: or selective protection with an empty window.  Lets ``read``
        #: inline the DRAM reservation without the mode-branch cascade.
        self.eng_plain = not self.sec_enabled or (
            not self.all_protected and self.protected_window <= 0
        )
        #: True when a read is always data fetch + one AES pass (direct
        #: encryption over the whole space, no MACs): the second-hottest
        #: mode, also inlined in ``read``.  The verify floor is a no-op
        #: here regardless of speculation (verify_done stays at *now*).
        self.eng_direct = (
            self.sec_enabled
            and self.direct_mode
            and self.all_protected
            and not self.uses_macs
        )
        self.ctr_lane = _KindLane(engine, engine._ctr_state)
        self.mac_lane = _KindLane(engine, engine._mac_state)
        self.meta_hit_latency = engine._hit_latency
        aes = engine.aes
        self.aes_pipe = aes._pipe
        self.aes_counts = aes._counts
        self.aes_occ = self.fetch_bytes * aes.cycles_per_byte
        self.aes_latency = aes.latency
        mac_unit = engine.mac_unit
        self.mac_pipe = mac_unit._pipe
        self.mac_counts = mac_unit._counts
        self.mac_nops = self.fetch_bytes // params.SECTOR_BYTES or 1
        self.mac_occ = self.mac_nops * mac_unit.cycles_per_op
        self.mac_latency = mac_unit.latency
        self.dram_counts = dram._counts
        # shares the channel's occupancy memo so the float is the very
        # division result the scalar path uses.
        self.dram_occ = dram._occupancy(self.fetch_bytes)
        self.dram_latency = dram.access_latency
        self.dram_txn = self.fetch_bytes // params.SECTOR_BYTES or 1

    # -- SM-side completion plumbing -----------------------------------

    def _reply(self, respond: Callable[[float], None]) -> None:
        """Fired at a request's partition-done time: schedule SM arrival.

        Stands in for the scalar per-item ``reply`` closure on paths where
        the closure would fire as its own event anyway (L2 hits, writes,
        duplicate fetches): one seq at schedule time, one at arrival, the
        same consumption pattern as the closure.
        """
        events = self.events
        arrive = events.now + self.latency
        events.schedule_at(arrive, respond, arrive)

    def _make_reply(self, respond: Callable[[float], None]):
        """A real closure for waiter lists (fill/merge paths call it with a
        completion time, exactly like the scalar ``reply``)."""
        schedule_at = self.schedule_at
        latency = self.latency

        def reply(done: float, _respond=respond) -> None:
            arrive = done + latency
            schedule_at(arrive, _respond, arrive)

        return reply

    # -- metadata access (counter / MAC caches) ------------------------

    def _meta(self, now: float, lane: _KindLane, block: int, is_write: bool):
        """One metadata cache access; returns ``(ready, primary?)``.

        Inlines the dominant outcomes — cache hit and MSHR secondary merge
        — after non-mutating peeks; every other case (primary miss, dup
        fetch, MSHR-full, perfect/infinite caches) is delegated to the
        scalar method before any state is touched, so stats and timing are
        charged exactly once either way.
        """
        if lane.fast:
            tag = block >> lane.line_shift
            cset = lane.single_set
            if cset is None:
                cset = lane.sets[tag % lane.num_sets]
            line = cset.get(tag)
            if line is not None:
                if line.valid_mask & 1:
                    kcounts = lane.kcounts
                    kcounts["accesses"] += 1.0
                    ccounts = lane.ccounts
                    ccounts["accesses"] += 1.0
                    cset.move_to_end(tag)
                    if is_write:
                        line.dirty_mask |= 1
                    ccounts["hits"] += 1.0
                    kcounts["hits"] += 1.0
                    return now + self.meta_hit_latency, False
            else:
                pending = lane.inflight.get(block)
                if pending is not None:
                    entry = lane.entries.get(block)
                    if entry is not None and entry.merged < lane.merge_cap:
                        kcounts = lane.kcounts
                        kcounts["accesses"] += 1.0
                        ccounts = lane.ccounts
                        ccounts["accesses"] += 1.0
                        ccounts["misses"] += 1.0
                        kcounts["misses"] += 1.0
                        kcounts["secondary_misses"] += 1.0
                        pending.dirty = pending.dirty or is_write
                        entry.merged += 1
                        kcounts["merged"] += 1.0
                        return pending.ready_time, False
        ready, outcome = self.engine._metadata_cache_access(
            now, lane.state, block, is_write
        )
        return ready, outcome is _PRIMARY

    def _ctr_access(self, now: float, addr: int, is_write: bool):
        """Mirror of ``SecureEngine._counter_access``."""
        engine = self.engine
        memo = self.ctr_memo
        block = memo.get(addr)
        if block is None:
            block = memo[addr] = self.ctr_block_addr(addr)
        ready, primary = self._meta(now, self.ctr_lane, block, is_write)
        walk_done = now
        if primary and self.uses_tree:
            walk_done = engine._tree_walk(now, self.bmt_path_addrs(addr)[:-1])
        if is_write:
            engine._note_counter_increment(now, addr)
            if self.uses_tree and not self.lazy:
                engine._eager_parent_update(now, _KIND_COUNTER, block)
        return ready, walk_done

    def _mac_access(self, now: float, addr: int, is_write: bool):
        """Mirror of ``SecureEngine._mac_access``."""
        engine = self.engine
        memo = self.mac_memo
        block = memo.get(addr)
        if block is None:
            block = memo[addr] = self.mac_block_addr(addr)
        ready, primary = self._meta(now, self.mac_lane, block, is_write)
        walk_done = now
        if primary and self.walk_mt:
            walk_done = engine._tree_walk(now, self.mt_path_addrs(addr)[:-1])
        if is_write and self.walk_mt and not self.lazy:
            engine._eager_parent_update(now, _KIND_MAC, block)
        return ready, walk_done

    # -- secure engine data path ---------------------------------------

    def _engine_read(self, now: float, addr: int) -> float:
        """Mirror of ``SecureEngine.read_sector`` for one fetch unit."""
        self.eng_counts["reads"] += 1.0
        protected = self.all_protected or (
            (addr // params.CACHE_LINE_BYTES) % 64 < self.protected_window
        )
        # data fetch (inlined DramChannel.read, fixed size/category)
        channel = self.channel
        next_free = channel.next_free
        start = next_free if next_free > now else now
        occ = self.dram_occ
        channel.next_free = start + occ
        channel.busy_cycles += occ
        dcounts = self.dram_counts
        dcounts["txn_data_read"] += self.dram_txn
        dcounts["bytes_data_read"] += self.fetch_bytes
        dcounts["txn_total"] += self.dram_txn
        dcounts["bytes_total"] += self.fetch_bytes
        data_ready = start + occ + self.dram_latency
        if not self.sec_enabled or not protected:
            return data_ready

        verify_done = now
        if self.counter_mode:
            ctr_ready, walk_done = self._ctr_access(now, addr, False)
            # AES OTP generation (inlined AesEngineBank.process)
            pipe = self.aes_pipe
            next_free = pipe.next_free
            start = next_free if next_free > now else now
            occ = self.aes_occ
            pipe.next_free = start + occ
            pipe.busy_cycles += occ
            if ctr_ready > start:
                start = ctr_ready
            acounts = self.aes_counts
            acounts["ops"] += 1.0
            acounts["bytes"] += self.fetch_bytes
            otp_ready = start + occ + self.aes_latency
            ready = (data_ready if data_ready >= otp_ready else otp_ready) + 1
            if walk_done > verify_done:
                verify_done = walk_done
        elif self.direct_mode:
            pipe = self.aes_pipe
            next_free = pipe.next_free
            start = next_free if next_free > now else now
            occ = self.aes_occ
            pipe.next_free = start + occ
            pipe.busy_cycles += occ
            if data_ready > start:
                start = data_ready
            acounts = self.aes_counts
            acounts["ops"] += 1.0
            acounts["bytes"] += self.fetch_bytes
            ready = start + occ + self.aes_latency
        else:
            ready = data_ready

        if self.uses_macs:
            mac_ready, walk_done = self._mac_access(now, addr, False)
            pipe = self.mac_pipe
            next_free = pipe.next_free
            start = next_free if next_free > now else now
            occ = self.mac_occ
            pipe.next_free = start + occ
            pipe.busy_cycles += occ
            available = mac_ready if mac_ready >= data_ready else data_ready
            if available > start:
                start = available
            self.mac_counts["ops"] += self.mac_nops
            check_done = start + occ + self.mac_latency
            if walk_done > verify_done:
                verify_done = walk_done
            if check_done > verify_done:
                verify_done = check_done
        if not self.speculative:
            if verify_done > ready:
                ready = verify_done
        return ready

    def _engine_write(self, now: float, addr: int) -> float:
        """Mirror of ``SecureEngine.write_sector`` for one fetch unit."""
        self.eng_counts["writes"] += 1.0
        protected = self.all_protected or (
            (addr // params.CACHE_LINE_BYTES) % 64 < self.protected_window
        )
        if self.sec_enabled and protected:
            if self.counter_mode:
                self._ctr_access(now, addr, True)
                pipe = self.aes_pipe
                next_free = pipe.next_free
                start = next_free if next_free > now else now
                occ = self.aes_occ
                pipe.next_free = start + occ
                pipe.busy_cycles += occ
                acounts = self.aes_counts
                acounts["ops"] += 1.0
                acounts["bytes"] += self.fetch_bytes
            elif self.direct_mode:
                pipe = self.aes_pipe
                next_free = pipe.next_free
                start = next_free if next_free > now else now
                occ = self.aes_occ
                pipe.next_free = start + occ
                pipe.busy_cycles += occ
                acounts = self.aes_counts
                acounts["ops"] += 1.0
                acounts["bytes"] += self.fetch_bytes
            if self.uses_macs:
                self._mac_access(now, addr, True)
                pipe = self.mac_pipe
                next_free = pipe.next_free
                start = next_free if next_free > now else now
                occ = self.mac_occ
                pipe.next_free = start + occ
                pipe.busy_cycles += occ
                self.mac_counts["ops"] += self.mac_nops
        # data write-back (inlined DramChannel.write)
        channel = self.channel
        next_free = channel.next_free
        start = next_free if next_free > now else now
        occ = self.dram_occ
        channel.next_free = start + occ
        channel.busy_cycles += occ
        dcounts = self.dram_counts
        dcounts["txn_data_write"] += self.dram_txn
        dcounts["bytes_data_write"] += self.fetch_bytes
        dcounts["txn_total"] += self.dram_txn
        dcounts["bytes_total"] += self.fetch_bytes
        return start + occ

    def write_back(self, now: float, evictions) -> None:
        """Mirror of ``MemoryPartition._write_back`` via the inline engine."""
        pcounts = self.pcounts
        for eviction in evictions:
            for sector_addr in eviction.dirty_sector_addrs:
                pcounts["l2_writebacks"] += 1.0
                self._engine_write(now, sector_addr)

    def _l2_fill(self, addr: int, dirty: bool):
        """Inline of ``SectoredCache.fill`` on the partition's L2.

        Returns the eviction list when a victim was produced, else None
        (``write_back`` only cares about the non-empty case).
        """
        tag = addr >> self.l2_shift
        cset = self.l2_single
        if cset is None:
            cset = self.l2_sets[tag % self.l2_nsets]
        evictions = None
        line = cset.get(tag)
        if line is None:
            if len(cset) >= self.l2_assoc:
                evictions = [self.l2_evict(cset)]
            line = _Line()
            cset[tag] = line
        if self.l2_sectored:
            bit = 1 << ((addr >> self.l2_sector_shift) & self.l2_spl_mask)
        else:
            bit = self.l2_full_mask
        line.valid_mask |= bit
        if dirty:
            line.dirty_mask |= bit
        cset.move_to_end(tag)
        self.l2_counts["fills"] += 1.0
        return evictions

    def _on_fill(self, sector: int) -> None:
        """Inline of ``MemoryPartition._on_fill`` (telemetry off).

        Fires as the same single event the scalar path schedules; waiter
        closures are invoked in list order, so every downstream arrival
        keeps its sequence position.  Waiters attached by the scalar path
        (telemetry flipped on mid-flight) are plain ``reply`` closures with
        the same signature, so mixing is safe.  A fill scheduled during
        warmup can fire after the telemetry boundary — then the scalar
        method runs instead, so its write-backs emit their records.
        """
        partition = self.partition
        if partition._lat_on or partition._trace_on:
            partition._on_fill(sector)
            return
        now = self.events.now
        entry = self.l2_entries.pop(sector)
        # inline of _l2_fill (this is the single hottest fill site)
        tag = sector >> self.l2_shift
        cset = self.l2_single
        if cset is None:
            cset = self.l2_sets[tag % self.l2_nsets]
        line = cset.get(tag)
        if line is None:
            if len(cset) >= self.l2_assoc:
                evictions = [self.l2_evict(cset)]
                self.write_back(now, evictions)
            line = _Line()
            cset[tag] = line
        if self.l2_sectored:
            line.valid_mask |= 1 << (
                (sector >> self.l2_sector_shift) & self.l2_spl_mask
            )
        else:
            line.valid_mask |= self.l2_full_mask
        cset.move_to_end(tag)
        self.l2_counts["fills"] += 1.0
        for respond in entry.waiters:
            respond(now)
        self.l2_mshr.recycle(entry)

    def _on_untracked_fill(self, sector: int, respond) -> None:
        """Inline of ``MemoryPartition._on_untracked_fill`` (telemetry off)."""
        partition = self.partition
        if partition._lat_on or partition._trace_on:
            partition._on_untracked_fill(sector, respond)
            return
        now = self.events.now
        evictions = self._l2_fill(sector, False)
        if evictions is not None:
            self.write_back(now, evictions)
        respond(now)

    # -- partition entry points ----------------------------------------

    def read(self, now: float, local: int, tag: int, bit: int, respond) -> None:
        """Mirror of ``access``/``_handle_read`` with telemetry off."""
        # admission gate + L2 bank port (inlined, as in access())
        pcounts = self.pcounts
        channel = self.channel
        backlog = channel.next_free - now
        if backlog > BACKLOG_WINDOW:
            pcounts["admission_stalls"] += 1.0
            admit = now + (backlog - BACKLOG_WINDOW)
        else:
            admit = now
        bank = self.bank
        occupancy = self.bank_occ
        bank_start = bank.next_free if bank.next_free > admit else admit
        bank.next_free = bank_start + occupancy
        bank.busy_cycles += occupancy
        start = bank_start + occupancy
        # L2 lookup (inlined SectoredCache.lookup, read)
        cset = self.l2_single
        if cset is None:
            cset = self.l2_sets[tag % self.l2_nsets]
        line = cset.get(tag)
        l2c = self.l2_counts
        l2c["accesses"] += 1.0
        if line is None:
            l2c["misses"] += 1.0
        else:
            cset.move_to_end(tag)
            if line.valid_mask & bit:
                l2c["hits"] += 1.0
                done = start + self.hit_latency
                self.schedule_at(done, self._reply, respond)
                return
            l2c["misses"] += 1.0
            l2c["sector_misses"] += 1.0
        sector = local & self.fetch_inv
        entries = self.l2_entries
        entry = entries.get(sector) if self.l2_enabled else None
        if entry is not None:
            pcounts["l2_secondary_misses"] += 1.0
            if entry.merged < self.l2_merge_cap:
                # MshrTable.merge with telemetry off
                entry.merged += 1
                entry.waiters.append(self._make_reply(respond))
                return
            ready = self._engine_read(start, sector)
            pcounts["l2_duplicate_fetches"] += 1.0
            self.schedule_at(ready, self._reply, respond)
            return
        mshr_enabled = self.l2_enabled
        begin = start
        full = mshr_enabled and len(entries) >= self.l2_cap
        if full:
            pcounts["l2_mshr_full_stalls"] += 1.0
            earliest = self.l2_mshr.earliest_ready()
            if earliest > begin:
                begin = earliest
        if self.eng_plain or self.eng_direct:
            # unprotected or direct-encrypted read: data fetch (inlined
            # DramChannel.read) plus, for direct mode, one AES pass floored
            # by data arrival — exactly _engine_read minus dead branches.
            self.eng_counts["reads"] += 1.0
            channel = self.channel
            next_free = channel.next_free
            dram_start = next_free if next_free > begin else begin
            occ = self.dram_occ
            channel.next_free = dram_start + occ
            channel.busy_cycles += occ
            dcounts = self.dram_counts
            txn = self.dram_txn
            nbytes = self.fetch_bytes
            dcounts["txn_data_read"] += txn
            dcounts["bytes_data_read"] += nbytes
            dcounts["txn_total"] += txn
            dcounts["bytes_total"] += nbytes
            ready = dram_start + occ + self.dram_latency
            if self.eng_direct:
                pipe = self.aes_pipe
                next_free = pipe.next_free
                aes_start = next_free if next_free > begin else begin
                aes_occ = self.aes_occ
                pipe.next_free = aes_start + aes_occ
                pipe.busy_cycles += aes_occ
                if ready > aes_start:
                    aes_start = ready
                acounts = self.aes_counts
                acounts["ops"] += 1.0
                acounts["bytes"] += nbytes
                ready = aes_start + aes_occ + self.aes_latency
        else:
            ready = self._engine_read(begin, sector)
        if mshr_enabled and len(entries) < self.l2_cap:
            # MshrTable.allocate, inlined (enabled/full/dup pre-checked by
            # the flow above, exactly as the scalar caller guarantees).
            pool = self.l2_pool
            if pool:
                entry = pool.pop()
                entry.line_addr = sector
                entry.ready_time = ready
                entry.merged = 0
            else:
                entry = MshrEntry(sector, ready)
            entry.waiters.append(self._make_reply(respond))
            entries[sector] = entry
            _heappush(self.l2_ready_heap, (ready, sector))
            self.schedule_at(ready, self._on_fill, sector)
        else:
            self.schedule_at(
                ready, self._on_untracked_fill, sector, self._make_reply(respond)
            )

    def write(self, now: float, local: int, tag: int, bit: int, respond) -> None:
        """Mirror of ``access``/``_handle_write`` with telemetry off."""
        pcounts = self.pcounts
        channel = self.channel
        backlog = channel.next_free - now
        if backlog > BACKLOG_WINDOW:
            pcounts["admission_stalls"] += 1.0
            admit = now + (backlog - BACKLOG_WINDOW)
        else:
            admit = now
        bank = self.bank
        occupancy = self.bank_occ
        bank_start = bank.next_free if bank.next_free > admit else admit
        bank.next_free = bank_start + occupancy
        bank.busy_cycles += occupancy
        start = bank_start + occupancy
        # L2 lookup (inlined SectoredCache.lookup, write)
        cset = self.l2_single
        if cset is None:
            cset = self.l2_sets[tag % self.l2_nsets]
        line = cset.get(tag)
        l2c = self.l2_counts
        l2c["accesses"] += 1.0
        hit = False
        if line is None:
            l2c["misses"] += 1.0
        else:
            cset.move_to_end(tag)
            if line.valid_mask & bit:
                line.dirty_mask |= bit
                l2c["hits"] += 1.0
                hit = True
            else:
                l2c["misses"] += 1.0
                l2c["sector_misses"] += 1.0
        if not hit:
            evictions = self._l2_fill(local, True)
            if evictions is not None:
                self.write_back(start, evictions)
        done = start + self.hit_latency
        self.schedule_at(done, self._reply, respond)


_KIND_COUNTER = MetadataKind.COUNTER
_KIND_MAC = MetadataKind.MAC


class ColumnarLane:
    """Per-GPU columnar delivery lane, one ``_PartitionLane`` per partition."""

    __slots__ = (
        "_lanes",
        "_partitions",
        "_ok",
        "_shift",
        "_pmask",
        "_pshift",
        "_offset_mask",
        "_l2_shift",
        "_sector_shift",
        "_spl_mask",
        "_l2_sectored",
    )

    def __init__(self, config, events, partitions: List[MemoryPartition], latency):
        self._partitions = partitions
        self._lanes = [_PartitionLane(p, events, latency) for p in partitions]
        ok = all(lane.supported for lane in self._lanes)
        sample = partitions[0] if partitions else None
        # the column pass needs the power-of-two interleave/L2 geometry;
        # every partition shares the one config, so probing one suffices.
        if ok and sample is not None and sample._interleave_shift is not None:
            self._shift = sample._interleave_shift
            self._pshift = sample._partition_shift
            self._offset_mask = sample._offset_mask
            self._pmask = config.num_partitions - 1
            l2 = sample.l2
            self._l2_shift = l2._line_shift
            self._sector_shift = l2._sector_shift
            self._spl_mask = l2._spl_mask
            self._l2_sectored = l2._sectored
            if self._l2_sectored and (
                self._sector_shift is None or self._spl_mask is None
            ):
                ok = False
        else:
            ok = False
        self._ok = ok

    def deliver(self, now: float, items: list) -> bool:
        """Run one delivery group through the lane.

        Returns False — before touching any state — when the group is
        irregular: lane disabled at construction, or telemetry emission
        currently live on any partition (the flags flip at the warmup
        boundary).  The caller then takes the scalar loop.
        """
        if not self._ok:
            return False
        # the engine trace hook is fixed at construction (checked in the
        # per-partition `supported` gate); only the telemetry emission
        # flags can flip at the warmup boundary, so they are all we probe.
        for p in self._partitions:
            if p._lat_on or p._trace_on:
                return False
        n = len(items)
        shift = self._shift
        pshift = self._pshift
        offset_mask = self._offset_mask
        pmask = self._pmask
        l2_shift = self._l2_shift
        lanes = self._lanes
        if _np is not None and n >= NUMPY_MIN_GROUP:
            # vectorized column pass: partition index, local address, L2
            # tag and sector bit for the whole group in four array ops.
            addrs = _np.fromiter((item[0] for item in items), _np.int64, count=n)
            pidx_col = ((addrs >> shift) & pmask).tolist()
            local = ((addrs >> (shift + pshift)) << shift) | (addrs & offset_mask)
            tag_col = (local >> l2_shift).tolist()
            if self._l2_sectored:
                bit_col = (
                    _np.left_shift(1, (local >> self._sector_shift) & self._spl_mask)
                ).tolist()
            else:
                bit_col = [1] * n
            local_col = local.tolist()
            for i in range(n):
                item = items[i]
                lane = lanes[pidx_col[i]]
                if item[1]:
                    lane.write(now, local_col[i], tag_col[i], bit_col[i], item[2])
                else:
                    lane.read(now, local_col[i], tag_col[i], bit_col[i], item[2])
            return True
        # scalar column twin (also the numpy-less path)
        sectored = self._l2_sectored
        sector_shift = self._sector_shift
        spl_mask = self._spl_mask
        for addr, is_write, respond in items:
            lane = lanes[(addr >> shift) & pmask]
            local = ((addr >> shift >> pshift) << shift) | (addr & offset_mask)
            tag = local >> l2_shift
            if sectored:
                bit = 1 << ((local >> sector_shift) & spl_mask)
            else:
                bit = 1
            if is_write:
                lane.write(now, local, tag, bit, respond)
            else:
                lane.read(now, local, tag, bit, respond)
        return True


def build_lane(config, events, partitions, latency) -> Optional[ColumnarLane]:
    """A lane for this GPU, or None when the switches rule it out."""
    if not (fastpath.BATCHING and fastpath.COLUMNAR):
        return None
    lane = ColumnarLane(config, events, partitions, latency)
    return lane if lane._ok else None
