"""Top-level GPU model and the ``simulate`` entry point.

Assembles SMs, the crossbar, memory partitions (each with its L2 bank,
secure engine and DRAM channel), runs the event loop for a fixed window of
core cycles, and condenses the statistics every experiment needs into a
:class:`SimulationResult`.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.config import GpuConfig, MetadataKind
from repro.common.stats import StatGroup
from repro.secure.layout import MetadataLayout, shared_layout
from repro.sim import fastpath
from repro.sim.dram import ALL_CATEGORIES
from repro.sim.event import EventQueue
from repro.sim.interconnect import Crossbar
from repro.sim.partition import MemoryPartition
from repro.sim.sm import StreamingMultiprocessor
from repro.telemetry.session import TelemetrySession
from repro.telemetry.traffic import TrafficClass, class_bytes_from_result, live_class_bytes
from repro.workloads.base import WorkloadSpec

#: default simulated window in core cycles (the paper runs 4M cycles on
#: real hardware configs; the scaled model converges much faster).
DEFAULT_HORIZON = 30_000


@dataclass
class SimulationResult:
    """Everything the paper's figures read off one simulation run."""

    workload: str
    cycles: float
    instructions: int
    ipc: float
    bandwidth_utilization: float
    dram_txn: Dict[str, float]
    l2_accesses: float
    l2_misses: float
    metadata: Dict[MetadataKind, Dict[str, float]]
    counter_overflows: float = 0.0
    stats: StatGroup = field(default_factory=lambda: StatGroup("gpu"), repr=False)
    #: telemetry export (see TelemetrySession.export) when telemetry was
    #: enabled for the run; None otherwise.  Excluded from caching.
    telemetry: Optional[dict] = field(default=None, repr=False)
    #: simulator events executed for this run (warmup + measured window).
    #: A host-side throughput observable (events/sec benchmarks); excluded
    #: from ``result_to_dict`` so cached results and goldens are unaffected.
    events_processed: int = field(default=0, repr=False)

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    def traffic_fractions(self) -> Dict[str, float]:
        """Figure 4's breakdown: data / ctr / mac / bmt / wb shares."""
        data = self.dram_txn["data_read"] + self.dram_txn["data_write"]
        parts = {
            "data": data,
            "ctr": self.dram_txn["ctr"],
            "mac": self.dram_txn["mac"],
            "bmt": self.dram_txn["bmt"],
            "wb": self.dram_txn["wb"],
        }
        total = sum(parts.values())
        if total == 0:
            return {k: 0.0 for k in parts}
        return {k: v / total for k, v in parts.items()}

    def metadata_fraction(self) -> float:
        fractions = self.traffic_fractions()
        return 1.0 - fractions["data"]

    def metadata_miss_rate(self, kind: MetadataKind) -> float:
        stats = self.metadata[kind]
        return stats["misses"] / stats["accesses"] if stats["accesses"] else 0.0

    def secondary_miss_ratio(self, kind: MetadataKind) -> float:
        stats = self.metadata[kind]
        return stats["secondary_misses"] / stats["misses"] if stats["misses"] else 0.0


class Gpu:
    """An assembled GPU ready to run one workload."""

    def __init__(
        self,
        config: GpuConfig,
        workload: WorkloadSpec,
        metadata_trace_hook: Optional[Callable[[MetadataKind, int], None]] = None,
    ) -> None:
        self.config = config
        self.workload = workload
        self.events = EventQueue()
        self.stats = StatGroup("gpu")
        # per-partition metadata: each memory controller protects its own
        # slice of the protected range with its own counters/MACs/tree.
        # Under the batched core the (immutable) layout is shared process-
        # wide, so address-translation memos stay warm across points.
        per_partition = config.secure.protected_bytes // config.num_partitions
        if fastpath.BATCHING:
            self.layout = shared_layout(max(per_partition, 1 << 20))
        else:
            self.layout = MetadataLayout(max(per_partition, 1 << 20))
        #: telemetry is opt-in; when off, components hold NULL_TRACER and
        #: the event loop sees no sampler events — the timed path is
        #: bit-identical to a build without telemetry at all.
        self.telemetry: Optional[TelemetrySession] = None
        tracer = None
        latency = None
        if config.telemetry.enabled:
            self.telemetry = TelemetrySession(config.telemetry, self.events)
            tracer = self.telemetry.tracer
            if self.telemetry.latency.enabled:
                latency = self.telemetry.latency
        self.partitions: List[MemoryPartition] = [
            MemoryPartition(
                index,
                config,
                self.events,
                self.layout,
                self.stats.child(f"partition{index}"),
                trace_hook=metadata_trace_hook if index == 0 else None,
                tracer=tracer,
                latency=latency,
            )
            for index in range(config.num_partitions)
        ]
        if self.telemetry is not None:
            self._register_gauges()
        self.crossbar = Crossbar(
            config, self.events, self.partitions, self.stats.child("icnt"), latency=latency
        )
        warps_per_sm = min(workload.warps_per_sm, config.max_warps_per_sm)
        self.sms: List[StreamingMultiprocessor] = []
        for sm_id in range(config.num_sms):
            traces = [
                workload.warp_trace(sm_id, w, config.num_sms, warps_per_sm)
                for w in range(warps_per_sm)
            ]
            self.sms.append(
                StreamingMultiprocessor(
                    sm_id,
                    config,
                    self.events,
                    self.crossbar.send,
                    self.stats.child(f"sm{sm_id}"),
                    traces,
                    latency=latency,
                    send_batch=self.crossbar.send_batch,
                )
            )

    def _register_gauges(self) -> None:
        """Expose per-component gauges to the telemetry sampler.

        Gauges are read-only closures over live components; polling them
        never mutates simulation state.
        """
        sampler = self.telemetry.sampler
        events = self.events
        for partition in self.partitions:
            prefix = f"p{partition.index}"
            sampler.register(
                f"{prefix}.l2_mshr_occupancy",
                lambda p=partition: p.l2_mshr.occupancy,
            )
            sampler.register(
                f"{prefix}.dram_backlog",
                lambda p=partition: p.dram.backlog(events.now),
            )
            for kind in MetadataKind:
                sampler.register(
                    f"{prefix}.mdc_mshr_{kind.value}",
                    lambda p=partition, k=kind: p.engine.mshr_occupancy(k),
                )
        sampler.register(
            "aes_busy_cycles",
            lambda: sum(p.engine.aes.busy_cycles for p in self.partitions),
        )
        sampler.register(
            "mac_busy_cycles",
            lambda: sum(p.engine.mac_unit.busy_cycles for p in self.partitions),
        )
        # the per-class byte totals walk every partition's stats; batch them
        # into one poll per epoch instead of recomputing per column.
        class_order = tuple(tclass.name for tclass in TrafficClass)

        def poll_class_bytes(order=class_order):
            totals = live_class_bytes(self.partitions)
            return [totals[name] for name in order]

        sampler.register_block(
            [f"bytes_{name}" for name in class_order], poll_class_bytes
        )

    def run(self, horizon: float = DEFAULT_HORIZON, warmup: float = 0.0) -> SimulationResult:
        """Simulate and summarize.

        With *warmup* > 0, the first *warmup* cycles run with caches filling
        but statistics discarded, then *horizon* measured cycles follow —
        the standard warm-cache methodology (the paper measures a 4M-cycle
        window on warm hardware state).
        """
        for sm in self.sms:
            sm.start()
        if self.telemetry is not None:
            self.telemetry.sampler.start()
        processed = 0
        if warmup > 0:
            if self.telemetry is not None:
                # exported telemetry covers only the measured window (see
                # _reset_measurement), so emitting during warmup is pure
                # waste: park the bound emission guards until the window
                # opens.
                self._set_trace_emission(False)
            processed += self.events.run(until=warmup)
            self._reset_measurement()
        processed += self.events.run(until=warmup + horizon)
        result = self._summarize(horizon)
        # count *logical* events: a grouped crossbar delivery retires one
        # scheduled event but performs N per-access deliveries; the queue
        # accumulates the extra N-1 so events/sec stays comparable between
        # the batched and scalar cores.
        result.events_processed = processed + self.events.extra_events
        return result

    def _set_trace_emission(self, enabled: bool) -> None:
        """Flip the emission guards components bound at construction.

        Components cache ``tracer.enabled`` in a ``_trace_on`` attribute so
        the disabled path costs one attribute load; this is the matching
        session-level switch that rebinds those cached guards (warmup off,
        measured window on).  The latency-recorder guards (``_lat_on``)
        follow the same protocol, additionally gated on the recorder
        actually being configured.
        """
        lat = (
            enabled
            and self.telemetry is not None
            and self.telemetry.latency.enabled
        )
        for partition in self.partitions:
            partition._trace_on = enabled
            partition.l2._trace_on = enabled
            partition.dram._trace_on = enabled
            partition.engine._trace_on = enabled
            partition._lat_on = lat
            partition.dram._lat_on = lat
            partition.engine._lat_on = lat
            partition.l2_mshr._lat_on = lat
        self.crossbar._lat_on = lat
        for sm in self.sms:
            sm._lat_on = lat
            sm.l1._lat_on = lat

    def _reset_measurement(self) -> None:
        """Zero all counters while keeping cache/MSHR/queue state."""
        self.stats.reset()
        if self.telemetry is not None:
            # telemetry must describe the same window as the statistics:
            # drop warmup-phase sampler rows along with the counters they
            # were recorded against, and open the emission guards for the
            # measured window.
            self.telemetry.reset()
            self._set_trace_emission(True)
        for sm in self.sms:
            sm.instructions = 0
            sm.issue.busy_cycles = 0.0
        for partition in self.partitions:
            partition.dram.channel.busy_cycles = 0.0
            partition._bank.busy_cycles = 0.0
            partition.engine.aes._pipe.busy_cycles = 0.0
            partition.engine.mac_unit._pipe.busy_cycles = 0.0

    def _summarize(self, horizon: float) -> SimulationResult:
        instructions = sum(sm.instructions for sm in self.sms)
        dram_txn = {cat: 0.0 for cat in ALL_CATEGORIES}
        utilization = 0.0
        l2_accesses = 0.0
        l2_misses = 0.0
        overflows = 0.0
        metadata: Dict[MetadataKind, Dict[str, float]] = {
            kind: {
                "accesses": 0.0,
                "hits": 0.0,
                "misses": 0.0,
                "primary_misses": 0.0,
                "secondary_misses": 0.0,
                "merged": 0.0,
                "duplicate_fetches": 0.0,
                "writebacks": 0.0,
                "fills": 0.0,
                "mshr_full_stalls": 0.0,
            }
            for kind in MetadataKind
        }
        for partition in self.partitions:
            for cat in ALL_CATEGORIES:
                dram_txn[cat] += partition.dram.stats.get(f"txn_{cat}")
            utilization += partition.dram.utilization(horizon)
            l2_accesses += partition.l2.stats.get("accesses")
            l2_misses += partition.l2.stats.get("misses")
            overflows += partition.engine.stats.get("counter_overflows")
            for kind in MetadataKind:
                kstats = partition.engine.kind_stats(kind)
                for key in metadata[kind]:
                    metadata[kind][key] += kstats.get(key)
        utilization /= max(1, len(self.partitions))
        return SimulationResult(
            workload=self.workload.name,
            cycles=horizon,
            instructions=instructions,
            ipc=instructions / horizon if horizon else 0.0,
            bandwidth_utilization=utilization,
            dram_txn=dram_txn,
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
            metadata=metadata,
            counter_overflows=overflows,
            stats=self.stats,
        )


@contextmanager
def _gc_paused():
    """Pause cyclic garbage collection for the duration of one simulation.

    The event loop allocates heavily (closures, event tuples, trace
    records) and nearly all of it dies by reference counting; the periodic
    generation-0 scans only add overhead while the run is in flight.  The
    collector is re-enabled on exit, so the dropped ``Gpu`` object graph —
    which *is* cyclic (the event queue holds bound methods of components
    that hold the queue) — is reclaimed on the next natural collection.
    Respects a collector the caller already disabled.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def simulate(
    config: GpuConfig,
    workload: WorkloadSpec,
    horizon: float = DEFAULT_HORIZON,
    warmup: float = 0.0,
    metadata_trace: bool = False,
) -> SimulationResult | Tuple[SimulationResult, List[Tuple[MetadataKind, int]]]:
    """Run one workload on one GPU configuration.

    With ``metadata_trace=True``, also returns partition 0's metadata access
    trace as ``(kind, block_addr)`` tuples (Figures 10-11 consume this).
    """
    trace: List[Tuple[MetadataKind, int]] = []
    hook = (lambda kind, addr: trace.append((kind, addr))) if metadata_trace else None
    with _gc_paused():
        gpu = Gpu(config, workload, metadata_trace_hook=hook)
        result = gpu.run(horizon, warmup=warmup)
        if gpu.telemetry is not None:
            result.telemetry = gpu.telemetry.export(
                meta={
                    "workload": workload.name,
                    "horizon": horizon,
                    "warmup": warmup,
                    "class_bytes": class_bytes_from_result(result),
                }
            )
            # the ring lives inside the (cyclic) Gpu object graph, so its
            # tens of thousands of records would otherwise wait for a
            # collector pass; clearing here frees them by refcount the
            # moment this frame drops the gpu.
            gpu.telemetry.reset()
        # pending events are the bound-method edges that make the dropped
        # model graph cyclic; clearing them lets refcounting reclaim it.
        gpu.events.clear()
        # drop the model while the collector is still paused: the first
        # collection after re-enable then scans a small heap instead of
        # traversing the whole (now dead) object graph.
        del gpu
    if metadata_trace:
        return result, trace
    return result
